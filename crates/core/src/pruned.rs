//! The Pruned-BloomSampleTree (§5.2): a BloomSampleTree materialised only
//! over the occupied portion of the namespace.
//!
//! Node geometry matches the hypothetical complete tree exactly (same
//! ranges, same depth), but subtrees whose range holds no occupied id are
//! simply never created, and node filters store only occupied elements.
//! Leaves keep their occupied ids so the brute-force phase tests just
//! those — which is why measured accuracy *improves* as occupancy falls
//! (Figure 15): the effective namespace shrinks while `m` stays sized for
//! the full one.
//!
//! The tree grows dynamically: inserting a new id extends filters along
//! its root-to-leaf path and materialises missing nodes ("either we need
//! to insert this new element into already existing nodes in the tree, or
//! we need to create a new node (and potentially its subtree)").
//!
//! ## Incremental weight accounting
//!
//! Every node carries the **maintained weight** of its subtree — the
//! exact number of occupied ids below it. `insert`/`remove` apply an
//! `O(depth)` ±1 delta along the mutated root-to-leaf path, so the count
//! never needs a reconstruction walk;
//! [`PrunedBloomSampleTree::verify_weights`] recounts from scratch for
//! the test suites. Underflow is impossible by
//! construction: `remove` decrements only after the id was found at its
//! leaf, and every ancestor of that leaf counted the id when it was
//! inserted. Overflow is impossible because a weight never exceeds the
//! namespace size.
//!
//! ## The mutation journal
//!
//! Each successful mutation bumps [`PrunedBloomSampleTree::version`] and
//! records the mutated id in a bounded journal. A reader that last
//! synchronised at version `v` can ask for
//! [`PrunedBloomSampleTree::mutations_since`]`(v)` and repair its
//! cached per-node state along just the mutated paths (`O(depth)` per
//! mutation) instead of discarding it wholesale; when the journal no
//! longer reaches back to `v` the caller falls back to a full reset.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bst_bloom::params::TreePlan;

use crate::tree::{LeafCandidates, NodeId, SampleTree};

struct PrunedNode {
    range: Range<u64>,
    filter: BloomFilter,
    left: Option<NodeId>,
    right: Option<NodeId>,
    /// Sorted occupied ids — populated for leaves only.
    occupied: Vec<u64>,
    level: u32,
    /// Maintained weight: occupied ids in this subtree (see module docs).
    weight: u64,
}

/// Default bound on mutations remembered by the journal; older history
/// forces readers through a full cache reset, so this bounds repair
/// work per sync. Tunable per system via
/// [`crate::system::BstConfig::journal_cap`].
pub const DEFAULT_JOURNAL_CAP: usize = 256;

/// An occupancy-aware BloomSampleTree.
pub struct PrunedBloomSampleTree {
    plan: TreePlan,
    hasher: Arc<BloomHasher>,
    nodes: Vec<PrunedNode>,
    root: Option<NodeId>,
    /// Count of successful mutations over this tree's lifetime. The
    /// snapshot codec persists it, so a decoded tree continues the
    /// counter monotonically instead of restarting at 0 (which would
    /// alias stamps held by warm handles across a reload).
    version: u64,
    /// The last `journal_cap` mutations as `(id, inserted)`, oldest
    /// first (`inserted` false = removal).
    journal: VecDeque<(u64, bool)>,
    /// Journal retention bound; always ≥ 1.
    journal_cap: usize,
    /// The collision census: occupied ids probing fewer than `k`
    /// distinct bit positions, sorted ascending. Such ids weaken the
    /// `t∧ ≥ k` soundness argument, so exact-count fast paths consult
    /// this list before trusting a delta (expected size ≈ `n·k²/2m` — a
    /// handful).
    colliding: Vec<u64>,
}

impl std::fmt::Debug for PrunedBloomSampleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PrunedBloomSampleTree(M={}, m={}, depth={}, nodes={}, occupied={})",
            self.plan.namespace,
            self.plan.m,
            self.plan.depth,
            self.node_count(),
            self.occupied_count()
        )
    }
}

fn split(r: &Range<u64>) -> (Range<u64>, Range<u64>) {
    let mid = r.start + (r.end - r.start).div_ceil(2);
    (r.start..mid, mid..r.end)
}

impl PrunedBloomSampleTree {
    /// Builds the pruned tree over `occupied` (sorted, distinct ids within
    /// `[0, plan.namespace)`).
    ///
    /// # Panics
    /// Panics if `occupied` is unsorted, holds duplicates, or contains ids
    /// outside the namespace.
    pub fn build(plan: &TreePlan, occupied: &[u64]) -> Self {
        for w in occupied.windows(2) {
            assert!(w[0] < w[1], "occupied ids must be sorted and distinct");
        }
        if let Some(&last) = occupied.last() {
            assert!(last < plan.namespace, "occupied id outside namespace");
        }
        let hasher = Arc::new(plan.build_hasher());
        let colliding = occupied
            .iter()
            .copied()
            .filter(|&x| !hasher.probes_distinct_bits(x))
            .collect();
        let mut tree = PrunedBloomSampleTree {
            plan: plan.clone(),
            hasher,
            nodes: Vec::new(),
            root: None,
            version: 0,
            journal: VecDeque::new(),
            journal_cap: DEFAULT_JOURNAL_CAP,
            colliding,
        };
        tree.root = tree.build_node(0..plan.namespace, occupied, 0);
        tree
    }

    /// An empty tree ready for dynamic insertion.
    pub fn empty(plan: &TreePlan) -> Self {
        Self::build(plan, &[])
    }

    fn build_node(&mut self, range: Range<u64>, occ: &[u64], level: u32) -> Option<NodeId> {
        if occ.is_empty() {
            return None;
        }
        if level == self.plan.depth {
            // Leaf: filter over exactly the occupied ids in range.
            let filter = BloomFilter::from_keys(Arc::clone(&self.hasher), occ.iter().copied());
            let id = self.nodes.len() as NodeId;
            self.nodes.push(PrunedNode {
                range,
                filter,
                left: None,
                right: None,
                occupied: occ.to_vec(),
                level,
                weight: occ.len() as u64,
            });
            return Some(id);
        }
        let (lr, rr) = split(&range);
        let cut = occ.partition_point(|&x| x < lr.end);
        let left = self.build_node(lr, &occ[..cut], level + 1);
        let right = self.build_node(rr, &occ[cut..], level + 1);
        // Internal filter = union of children (≥ 1 child exists since occ
        // is non-empty).
        let mut filter: Option<BloomFilter> = None;
        for child in [left, right].into_iter().flatten() {
            match &mut filter {
                None => filter = Some(self.nodes[child as usize].filter.clone()),
                Some(f) => f.union_with(&self.nodes[child as usize].filter),
            }
        }
        // Non-empty occ implies at least one child exists; a missing
        // filter therefore means the whole region is pruned.
        let filter = filter?;
        let id = self.nodes.len() as NodeId;
        self.nodes.push(PrunedNode {
            range,
            filter,
            left,
            right,
            occupied: Vec::new(),
            level,
            weight: occ.len() as u64,
        });
        Some(id)
    }

    /// Inserts a newly occupied id, updating filters along the path and
    /// materialising missing nodes. Returns `false` when the id was
    /// already present at its leaf.
    ///
    /// # Panics
    /// Panics if `id` is outside the namespace.
    pub fn insert(&mut self, id: u64) -> bool {
        assert!(id < self.plan.namespace, "id {id} outside namespace");
        // Check presence first so failure leaves filters untouched.
        if self.contains_occupied(id) {
            return false;
        }
        let root = match self.root {
            Some(r) => r,
            None => {
                let r = self.new_node(0..self.plan.namespace, 0);
                self.root = Some(r);
                r
            }
        };
        let mut cur = root;
        loop {
            // Presence was ruled out above, so the insertion definitely
            // lands: the O(depth) weight delta applies along the path.
            let node = &mut self.nodes[cur as usize];
            node.filter.insert(id);
            node.weight += 1;
            let level = node.level;
            if level == self.plan.depth {
                let pos = node.occupied.partition_point(|&x| x < id);
                node.occupied.insert(pos, id);
                self.log_mutation(id, true);
                return true;
            }
            let (lr, rr) = split(&self.nodes[cur as usize].range);
            let go_left = id < lr.end;
            let child_range = if go_left { lr } else { rr };
            let existing = if go_left {
                self.nodes[cur as usize].left
            } else {
                self.nodes[cur as usize].right
            };
            cur = match existing {
                Some(c) => c,
                None => {
                    let c = self.new_node(child_range, level + 1);
                    if go_left {
                        self.nodes[cur as usize].left = Some(c);
                    } else {
                        self.nodes[cur as usize].right = Some(c);
                    }
                    c
                }
            };
        }
    }

    /// Removes an occupied id, shrinking the tree: the id leaves its
    /// leaf's list, every filter on the path is rebuilt exactly (leaf from
    /// its remaining ids, ancestors as unions of their children), and
    /// subtrees whose occupancy drops to zero are unlinked. Returns `false`
    /// when the id was not present.
    ///
    /// Cost: `O(depth · m/64)` word operations plus the leaf rebuild —
    /// the §5.2 evolution story run in reverse. Unlinked nodes remain in
    /// the arena as unreachable tombstones until the tree is rebuilt.
    pub fn remove(&mut self, id: u64) -> bool {
        assert!(id < self.plan.namespace, "id {id} outside namespace");
        let Some(root) = self.root else {
            return false;
        };
        let (removed, now_empty) = self.remove_rec(root, id);
        if removed {
            self.log_mutation(id, false);
            if now_empty {
                self.root = None;
            }
        }
        removed
    }

    /// Recursive removal; returns (removed, subtree now empty).
    fn remove_rec(&mut self, node: NodeId, id: u64) -> (bool, bool) {
        let level = self.nodes[node as usize].level;
        if level == self.plan.depth {
            let n = &mut self.nodes[node as usize];
            let Ok(pos) = n.occupied.binary_search(&id) else {
                return (false, false);
            };
            n.occupied.remove(pos);
            n.weight -= 1;
            // Rebuild the leaf filter exactly from the survivors, in
            // place (clearing beats reallocating `m` bits per removal).
            n.filter.clear();
            for i in 0..n.occupied.len() {
                let x = n.occupied[i];
                n.filter.insert(x);
            }
            let empty = n.occupied.is_empty();
            return (true, empty);
        }
        let (lr, _) = split(&self.nodes[node as usize].range);
        let go_left = id < lr.end;
        let child = if go_left {
            self.nodes[node as usize].left
        } else {
            self.nodes[node as usize].right
        };
        let Some(child) = child else {
            return (false, false);
        };
        let (removed, child_empty) = self.remove_rec(child, id);
        if !removed {
            return (false, false);
        }
        // The id was below this node, so it was counted here: the weight
        // delta walks back up the same path the insertion walked down.
        self.nodes[node as usize].weight -= 1;
        if child_empty {
            let n = &mut self.nodes[node as usize];
            if go_left {
                n.left = None;
            } else {
                n.right = None;
            }
        }
        // Rebuild this node's filter as the union of surviving children,
        // reusing its allocation (copy + OR instead of clone + OR).
        let (l, r) = {
            let n = &self.nodes[node as usize];
            (n.left, n.right)
        };
        match (l, r) {
            (None, None) => {
                self.nodes[node as usize].filter.clear();
                (true, true)
            }
            (Some(c), None) | (None, Some(c)) => {
                self.with_filter_pair(node, c, |dst, src| dst.copy_bits_from(src));
                (true, false)
            }
            (Some(a), Some(b)) => {
                self.with_filter_pair(node, a, |dst, src| dst.copy_bits_from(src));
                self.with_filter_pair(node, b, |dst, src| dst.union_with(src));
                (true, false)
            }
        }
    }

    /// Runs `f(&mut filter(dst), &filter(src))` via a disjoint arena
    /// split (parent/child indices are never equal).
    fn with_filter_pair(
        &mut self,
        dst: NodeId,
        src: NodeId,
        f: impl FnOnce(&mut BloomFilter, &BloomFilter),
    ) {
        let (d, s) = (dst as usize, src as usize);
        debug_assert_ne!(d, s, "a node cannot be its own child");
        if d < s {
            let (lo, hi) = self.nodes.split_at_mut(s);
            f(&mut lo[d].filter, &hi[0].filter);
        } else {
            let (lo, hi) = self.nodes.split_at_mut(d);
            f(&mut hi[0].filter, &lo[s].filter);
        }
    }

    fn new_node(&mut self, range: Range<u64>, level: u32) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(PrunedNode {
            range,
            filter: BloomFilter::new(Arc::clone(&self.hasher)),
            left: None,
            right: None,
            occupied: Vec::new(),
            level,
            // Materialised mid-insert: the insert loop applies the +1
            // delta when it steps onto this node.
            weight: 0,
        });
        id
    }

    /// Records a successful mutation: bumps the version, remembers the
    /// mutated id and direction for bounded-history cache repair, and
    /// keeps the collision census in step with the occupancy.
    fn log_mutation(&mut self, id: u64, inserted: bool) {
        self.version += 1;
        while self.journal.len() >= self.journal_cap {
            self.journal.pop_front();
        }
        self.journal.push_back((id, inserted));
        if !self.hasher.probes_distinct_bits(id) {
            if inserted {
                let pos = self.colliding.partition_point(|&x| x < id);
                self.colliding.insert(pos, id);
            } else if let Ok(pos) = self.colliding.binary_search(&id) {
                self.colliding.remove(pos);
            }
        }
    }

    /// The collision census: occupied ids probing fewer than `k`
    /// distinct bit positions, ascending. The `t∧ ≥ k` pruning rule can
    /// hide exactly these ids (and only these) from a sound walk, so
    /// exact-count maintenance trusts an O(k) weight delta only when no
    /// census member is a positive of the filter in question.
    pub fn colliding_ids(&self) -> &[u64] {
        &self.colliding
    }

    /// Count of successful mutations over this tree's lifetime,
    /// including the history encoded in a snapshot it was decoded from.
    /// The facade's tree generation mirrors this exactly.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The journal retention bound (mutations kept for cache repair).
    pub fn journal_cap(&self) -> usize {
        self.journal_cap
    }

    /// Sets the journal retention bound (clamped to ≥ 1), trimming the
    /// oldest remembered mutations if the new bound is smaller.
    pub fn set_journal_cap(&mut self, cap: usize) {
        self.journal_cap = cap.max(1);
        while self.journal.len() > self.journal_cap {
            self.journal.pop_front();
        }
    }

    /// The `(id, inserted)` mutations in `(since, version]`, oldest
    /// first, when the journal still reaches back that far — `None` once
    /// the history has been truncated (or `since` is from the future),
    /// in which case the caller must fall back to a full cache reset.
    pub fn mutations_since(&self, since: u64) -> Option<impl Iterator<Item = (u64, bool)> + '_> {
        let delta = self.version.checked_sub(since)?;
        let len = self.journal.len();
        // Compare in u64: `delta as usize` could wrap a huge gap into a
        // tiny one on 32-bit targets and skip billions of mutations.
        if delta > len as u64 {
            return None;
        }
        Some(self.journal.iter().skip(len - delta as usize).copied())
    }

    /// Whether `id` is an occupied namespace element (exact, via the leaf's
    /// id list — not a Bloom query).
    pub fn contains_occupied(&self, id: u64) -> bool {
        let mut cur = match self.root {
            Some(r) => r,
            None => return false,
        };
        loop {
            let node = &self.nodes[cur as usize];
            if node.level == self.plan.depth {
                return node.occupied.binary_search(&id).is_ok();
            }
            let (lr, _) = split(&node.range);
            let next = if id < lr.end { node.left } else { node.right };
            match next {
                Some(c) => cur = c,
                None => return false,
            }
        }
    }

    /// The plan the tree was built from.
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// Number of materialised nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of occupied ids — the root's maintained weight, kept exact
    /// by O(depth) deltas on every mutation.
    pub fn occupied_count(&self) -> u64 {
        match self.root {
            Some(root) => self.nodes[root as usize].weight,
            None => 0,
        }
    }

    /// The maintained weight of `node`'s subtree: the exact number of
    /// occupied ids in its range.
    pub fn subtree_weight(&self, node: NodeId) -> u64 {
        self.nodes[node as usize].weight
    }

    /// Recounts every reachable subtree from scratch and compares against
    /// the maintained weights (the test suites' ground truth; `O(nodes)`).
    pub fn verify_weights(&self) -> bool {
        fn recount(tree: &PrunedBloomSampleTree, node: NodeId, ok: &mut bool) -> u64 {
            let n = &tree.nodes[node as usize];
            let actual = if n.level == tree.plan.depth {
                n.occupied.len() as u64
            } else {
                [n.left, n.right]
                    .into_iter()
                    .flatten()
                    .map(|c| recount(tree, c, ok))
                    .sum()
            };
            *ok &= actual == n.weight;
            actual
        }
        let mut ok = true;
        if let Some(root) = self.root {
            recount(self, root, &mut ok);
        }
        ok
    }

    /// Heap bytes of all node bit arrays (the Figure 14 metric).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.filter.heap_bytes()).sum()
    }

    /// Heap bytes including the leaves' occupied-id lists.
    pub fn memory_bytes_with_ids(&self) -> usize {
        self.memory_bytes()
            + self
                .nodes
                .iter()
                .map(|n| n.occupied.len() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    /// Serializes the pruned tree (plan, structure, occupied ids, node bit
    /// arrays) into a compact binary buffer.
    ///
    /// Removals unlink emptied subtrees but leave their nodes in the
    /// arena as unreachable tombstones; the snapshot **compacts** them
    /// away, writing only reachable nodes (in arena order, links
    /// remapped), so a long-mutated tree persists no dead weight and a
    /// freshly built tree round-trips byte-identically.
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        // Remap arena indices to reachable-only indices, arena order kept.
        let mut remap = vec![u32::MAX; self.nodes.len()];
        if let Some(root) = self.root {
            self.mark_reachable(root, &mut remap);
        }
        let mut live = 0u32;
        for slot in remap.iter_mut() {
            if *slot != u32::MAX {
                *slot = live;
                live += 1;
            }
        }
        let link = |child: Option<NodeId>| match child {
            Some(c) => remap[c as usize],
            None => u32::MAX,
        };
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"BSTP");
        buf.put_u8(crate::persistence::VERSION);
        crate::persistence::put_plan(&mut buf, &self.plan);
        buf.put_u32_le(live);
        buf.put_u32_le(link(self.root));
        // Generation continuity: the mutation counter rides along so a
        // restored tree keeps stamping monotonically (warm handles and
        // weight-cache cells never see a reused generation).
        buf.put_u64_le(self.version);
        for (node, _) in self
            .nodes
            .iter()
            .zip(&remap)
            .filter(|(_, &slot)| slot != u32::MAX)
        {
            buf.put_u64_le(node.range.start);
            buf.put_u64_le(node.range.end);
            buf.put_u32_le(node.level);
            buf.put_u32_le(link(node.left));
            buf.put_u32_le(link(node.right));
            buf.put_u32_le(node.occupied.len() as u32);
            for &id in &node.occupied {
                buf.put_u64_le(id);
            }
            crate::persistence::put_words(&mut buf, node.filter.bits().words());
        }
        buf.to_vec()
    }

    /// Marks every node reachable from `node` with a non-MAX sentinel in
    /// `remap` (resolved to compact indices by the caller).
    fn mark_reachable(&self, node: NodeId, remap: &mut [u32]) {
        remap[node as usize] = 0;
        let n = &self.nodes[node as usize];
        for child in [n.left, n.right].into_iter().flatten() {
            self.mark_reachable(child, remap);
        }
    }

    /// Reconstructs a pruned tree serialized with [`Self::to_bytes`].
    pub fn from_bytes(input: &[u8]) -> Result<Self, crate::persistence::PersistError> {
        use crate::persistence::{check_header, get_plan, get_words, PersistError};
        use bytes::Buf;
        let mut input = input;
        check_header(&mut input, b"BSTP")?;
        let plan = get_plan(&mut input)?;
        if input.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        let node_count = input.get_u32_le() as usize;
        let root_raw = input.get_u32_le();
        if input.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        let version = input.get_u64_le();
        let hasher = Arc::new(plan.build_hasher());
        let words_per_node = plan.m.div_ceil(64);
        let mut nodes = Vec::with_capacity(node_count);
        let link = |raw: u32| -> Result<Option<NodeId>, PersistError> {
            if raw == u32::MAX {
                Ok(None)
            } else if (raw as usize) < node_count {
                Ok(Some(raw))
            } else {
                Err(PersistError::Corrupt("child link out of range"))
            }
        };
        for _ in 0..node_count {
            if input.remaining() < 8 + 8 + 4 + 4 + 4 + 4 {
                return Err(PersistError::Truncated);
            }
            let start = input.get_u64_le();
            let end = input.get_u64_le();
            if start >= end || end > plan.namespace {
                return Err(PersistError::Corrupt("node range invalid"));
            }
            let level = input.get_u32_le();
            let left = link(input.get_u32_le())?;
            let right = link(input.get_u32_le())?;
            let occ_len = input.get_u32_le() as usize;
            if input.remaining() < occ_len * 8 {
                return Err(PersistError::Truncated);
            }
            let mut occupied = Vec::with_capacity(occ_len);
            for _ in 0..occ_len {
                occupied.push(input.get_u64_le());
            }
            let words = get_words(&mut input, words_per_node)?;
            let bits = bst_bloom::bitvec::BitVec::from_words(words, plan.m);
            nodes.push(PrunedNode {
                range: start..end,
                filter: BloomFilter::from_parts(bits, Arc::clone(&hasher)),
                left,
                right,
                occupied,
                level,
                weight: 0, // rebuilt below once the links are in place
            });
        }
        let root = if root_raw == u32::MAX {
            None
        } else if (root_raw as usize) < node_count {
            Some(root_raw)
        } else {
            return Err(PersistError::Corrupt("root link out of range"));
        };
        // The journal itself is not persisted: a decoded tree resumes at
        // the encoded version with empty history, so a reader stamped
        // before the snapshot falls back to a full reset (past-horizon)
        // rather than silently replaying a hole.
        let mut tree = PrunedBloomSampleTree {
            plan,
            hasher,
            nodes,
            root,
            version,
            journal: VecDeque::new(),
            journal_cap: DEFAULT_JOURNAL_CAP,
            colliding: Vec::new(),
        };
        // Maintained weights and the collision census are derivable
        // state (leaf = its id count, internal = sum of children;
        // census = occupied ids with degenerate probes), so the
        // snapshot format omits them and the decoder reconstructs them
        // here — by construction they match a from-scratch recount.
        if let Some(root) = tree.root {
            tree.rebuild_weights(root)?;
        }
        let hasher = Arc::clone(&tree.hasher);
        tree.colliding = tree
            .occupied_ids()
            .into_iter()
            .filter(|&x| !hasher.probes_distinct_bits(x))
            .collect();
        Ok(tree)
    }

    /// Recomputes the maintained weight of every node in `root`'s subtree
    /// from the decoded leaves upward. Links come from untrusted bytes,
    /// so the walk is iterative (no stack overflow on adversarial depth)
    /// and rejects structures that revisit a node — cycles or shared
    /// children are not trees and would loop or double-count.
    fn rebuild_weights(&mut self, root: NodeId) -> Result<(), crate::persistence::PersistError> {
        let mut visited = vec![false; self.nodes.len()];
        // Explicit post-order: the first pop schedules the children, the
        // second (ready) pop sums them.
        let mut stack = vec![(root, false)];
        while let Some((node, ready)) = stack.pop() {
            let n = &self.nodes[node as usize];
            if ready {
                let weight = if n.level == self.plan.depth {
                    n.occupied.len() as u64
                } else {
                    [n.left, n.right]
                        .into_iter()
                        .flatten()
                        .map(|c| self.nodes[c as usize].weight)
                        .sum()
                };
                self.nodes[node as usize].weight = weight;
                continue;
            }
            if visited[node as usize] {
                return Err(crate::persistence::PersistError::Corrupt(
                    "node links revisit a node",
                ));
            }
            visited[node as usize] = true;
            stack.push((node, true));
            if n.level != self.plan.depth {
                for child in [n.left, n.right].into_iter().flatten() {
                    stack.push((child, false));
                }
            }
        }
        Ok(())
    }

    /// All occupied ids, ascending (walks the leaves).
    pub fn occupied_ids(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.occupied_count() as usize);
        if let Some(root) = self.root {
            self.collect_ids(root, &mut out);
        }
        out
    }

    fn collect_ids(&self, node: NodeId, out: &mut Vec<u64>) {
        let n = &self.nodes[node as usize];
        if n.level == self.plan.depth {
            out.extend_from_slice(&n.occupied);
            return;
        }
        for child in [n.left, n.right].into_iter().flatten() {
            self.collect_ids(child, out);
        }
    }
}

impl SampleTree for PrunedBloomSampleTree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node as usize].level == self.plan.depth
    }

    fn children(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        let n = &self.nodes[node as usize];
        (n.left, n.right)
    }

    fn filter(&self, node: NodeId) -> &BloomFilter {
        &self.nodes[node as usize].filter
    }

    fn range(&self, node: NodeId) -> Range<u64> {
        self.nodes[node as usize].range.clone()
    }

    fn leaf_candidates(&self, node: NodeId) -> LeafCandidates<'_> {
        debug_assert!(self.is_leaf(node));
        LeafCandidates::Slice(self.nodes[node as usize].occupied.iter())
    }

    fn hasher(&self) -> &Arc<BloomHasher> {
        &self.hasher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpStats;
    use crate::reconstruct::BstReconstructor;
    use crate::sampler::BstSampler;
    use crate::tree::BloomSampleTree;
    use bst_bloom::hash::HashKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> TreePlan {
        TreePlan {
            namespace: 1 << 16,
            m: 1 << 15,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 21,
            depth: 6,
            leaf_capacity: 1 << 10,
            target_accuracy: 0.9,
        }
    }

    fn occupied() -> Vec<u64> {
        // Two clusters plus scattered ids: most subtrees stay unbuilt.
        let mut v: Vec<u64> = (1000..1400u64).collect();
        v.extend(40_000..40_200u64);
        v.extend((0..50u64).map(|i| 60_000 + i * 97));
        v
    }

    #[test]
    fn build_materialises_only_needed_subtrees() {
        let t = PrunedBloomSampleTree::build(&plan(), &occupied());
        let full_nodes = (1usize << 7) - 1;
        assert!(
            t.node_count() < full_nodes / 2,
            "pruned tree has {} nodes, full tree {}",
            t.node_count(),
            full_nodes
        );
        assert_eq!(t.occupied_count(), occupied().len() as u64);
        assert_eq!(t.occupied_ids(), occupied());
    }

    #[test]
    fn geometry_matches_complete_tree() {
        let t = PrunedBloomSampleTree::build(&plan(), &occupied());
        // Every leaf range must have complete-tree width.
        let full = BloomSampleTree::build(&plan());
        let full_first_leaf = (1u32 << 6) - 1;
        let full_widths: std::collections::HashSet<(u64, u64)> = (full_first_leaf
            ..full.node_count() as u32)
            .map(|i| {
                let r = full.range(i);
                (r.start, r.end)
            })
            .collect();
        for id in 0..t.node_count() as u32 {
            if t.is_leaf(id) {
                let r = t.range(id);
                assert!(
                    full_widths.contains(&(r.start, r.end)),
                    "pruned leaf {:?} not a complete-tree leaf",
                    r
                );
            }
        }
    }

    #[test]
    fn sampling_over_pruned_tree_is_sound() {
        let occ = occupied();
        let t = PrunedBloomSampleTree::build(&plan(), &occ);
        let members: Vec<u64> = occ.iter().copied().step_by(7).collect();
        let q = t.query_filter(members.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OpStats::new();
        for _ in 0..100 {
            let s = sampler.sample(&q, &mut rng, &mut stats).expect("sample");
            // Samples come from occupied ids only.
            assert!(occ.binary_search(&s).is_ok(), "sampled unoccupied {s}");
            assert!(q.contains(s));
        }
    }

    #[test]
    fn reconstruction_matches_full_tree_on_occupied_sets() {
        let occ = occupied();
        let p = plan();
        let pruned = PrunedBloomSampleTree::build(&p, &occ);
        let full = BloomSampleTree::build(&p);
        let members: Vec<u64> = occ.iter().copied().step_by(3).collect();
        let q = pruned.query_filter(members.iter().copied());
        let mut s1 = OpStats::new();
        let rec_pruned = BstReconstructor::new(&pruned).reconstruct(&q, &mut s1);
        let mut s2 = OpStats::new();
        let rec_full = BstReconstructor::new(&full).reconstruct(&q, &mut s2);
        // The pruned tree answers only over occupied ids; the full tree may
        // add false positives from unoccupied ids. Restricting the full
        // answer to occupied ids must give the pruned answer.
        let rec_full_occ: Vec<u64> = rec_full
            .into_iter()
            .filter(|x| occ.binary_search(x).is_ok())
            .collect();
        assert_eq!(rec_pruned, rec_full_occ);
        // And the pruned tree does strictly less membership work.
        assert!(s1.memberships <= s2.memberships);
    }

    #[test]
    fn dynamic_insert_equals_batch_build() {
        let occ = occupied();
        let p = plan();
        let batch = PrunedBloomSampleTree::build(&p, &occ);
        let mut dynamic = PrunedBloomSampleTree::empty(&p);
        // Insert in a scrambled order.
        let mut shuffled = occ.clone();
        let mut rng = StdRng::seed_from_u64(2);
        for i in (1..shuffled.len()).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            shuffled.swap(i, j);
        }
        for id in shuffled {
            assert!(dynamic.insert(id));
        }
        assert_eq!(dynamic.occupied_count(), batch.occupied_count());
        assert_eq!(dynamic.occupied_ids(), batch.occupied_ids());
        // Same query behaviour even if node arena order differs.
        let q = batch.query_filter(occ.iter().copied().take(100));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        let r1 = BstReconstructor::new(&batch).reconstruct(&q, &mut s1);
        let r2 = BstReconstructor::new(&dynamic).reconstruct(&q, &mut s2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let p = plan();
        let mut t = PrunedBloomSampleTree::empty(&p);
        assert!(t.insert(42));
        assert!(!t.insert(42));
        assert_eq!(t.occupied_count(), 1);
    }

    #[test]
    fn empty_tree_has_no_root() {
        let t = PrunedBloomSampleTree::empty(&plan());
        assert_eq!(t.root(), None);
        assert_eq!(t.occupied_count(), 0);
        let q = t.query_filter([1u64]);
        let mut stats = OpStats::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(BstSampler::new(&t).sample(&q, &mut rng, &mut stats), None);
        assert!(BstReconstructor::new(&t)
            .reconstruct(&q, &mut stats)
            .is_empty());
    }

    #[test]
    fn memory_grows_with_occupancy() {
        let p = plan();
        let sparse = PrunedBloomSampleTree::build(&p, &[5, 10, 15]);
        let dense = PrunedBloomSampleTree::build(&p, &occupied());
        assert!(sparse.memory_bytes() < dense.memory_bytes());
        assert!(dense.memory_bytes_with_ids() > dense.memory_bytes());
        // Both are far below the complete tree.
        let full = BloomSampleTree::build(&p);
        assert!(dense.memory_bytes() < full.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "outside namespace")]
    fn out_of_namespace_id_panics() {
        let p = plan();
        let _ = PrunedBloomSampleTree::build(&p, &[1 << 16]);
    }

    #[test]
    #[should_panic(expected = "sorted and distinct")]
    fn unsorted_occupied_panics() {
        let p = plan();
        let _ = PrunedBloomSampleTree::build(&p, &[5, 3]);
    }
}

#[cfg(test)]
mod removal_tests {
    use super::*;
    use crate::metrics::OpStats;
    use crate::reconstruct::BstReconstructor;
    use crate::tree::SampleTree;
    use bst_bloom::hash::HashKind;

    fn plan() -> TreePlan {
        TreePlan {
            namespace: 1 << 14,
            m: 8192,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 77,
            depth: 5,
            leaf_capacity: 1 << 9,
            target_accuracy: 0.9,
        }
    }

    #[test]
    fn remove_then_queries_forget_the_id() {
        let occ: Vec<u64> = (0..400u64)
            .map(|i| i * 37 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        let victim = occ[123];
        assert!(t.contains_occupied(victim));
        assert!(t.remove(victim));
        assert!(!t.contains_occupied(victim));
        assert!(!t.remove(victim), "double removal must fail");
        assert_eq!(t.occupied_count(), occ.len() as u64 - 1);
        // Reconstruction of a filter containing the victim no longer
        // returns it (leaves only test occupied ids).
        let q = t.query_filter([victim]);
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        assert!(!rec.contains(&victim));
    }

    #[test]
    fn filters_stay_exact_after_removals() {
        // After removals, the tree must behave identically to a fresh
        // build over the surviving ids.
        let occ: Vec<u64> = (0..300u64)
            .map(|i| i * 53 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        let survivors: Vec<u64> = occ.iter().copied().filter(|x| x % 3 != 0).collect();
        for id in occ.iter().filter(|x| *x % 3 == 0) {
            assert!(t.remove(*id));
        }
        assert_eq!(t.occupied_ids(), survivors);
        let fresh = PrunedBloomSampleTree::build(&plan(), &survivors);
        let q = t.query_filter(survivors.iter().copied().take(60));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        assert_eq!(
            BstReconstructor::new(&t).reconstruct(&q, &mut s1),
            BstReconstructor::new(&fresh).reconstruct(&q, &mut s2),
        );
        // Filters were rebuilt exactly, so pruning work matches too.
        assert_eq!(s1.intersections, s2.intersections);
        assert_eq!(s1.memberships, s2.memberships);
    }

    #[test]
    fn removing_everything_empties_the_tree() {
        let occ: Vec<u64> = (100..150u64).collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        for id in &occ {
            assert!(t.remove(*id));
        }
        assert_eq!(t.occupied_count(), 0);
        assert_eq!(t.root(), None);
        // Insert works again after total removal.
        assert!(t.insert(42));
        assert!(t.contains_occupied(42));
    }

    #[test]
    fn snapshot_compacts_tombstones() {
        let occ: Vec<u64> = (0..256u64)
            .map(|i| i * 53 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        // Remove a contiguous cluster so whole subtrees unlink.
        for id in &occ {
            if *id < 8_000 {
                assert!(t.remove(*id));
            }
        }
        let survivors: Vec<u64> = occ.iter().copied().filter(|&x| x >= 8_000).collect();
        let fresh = PrunedBloomSampleTree::build(&plan(), &survivors);
        assert!(
            t.node_count() > fresh.node_count(),
            "mutated arena keeps tombstones in memory"
        );
        // The snapshot drops them: same byte length as a fresh build's,
        // and the decoded tree behaves identically.
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), fresh.to_bytes().len());
        let back = PrunedBloomSampleTree::from_bytes(&bytes).expect("decode");
        assert_eq!(back.node_count(), fresh.node_count());
        assert_eq!(back.occupied_ids(), survivors);
        let q = t.query_filter(survivors.iter().copied().take(40));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        assert_eq!(
            BstReconstructor::new(&back).reconstruct(&q, &mut s1),
            BstReconstructor::new(&t).reconstruct(&q, &mut s2),
        );
    }

    #[test]
    fn snapshot_rebuilds_maintained_weights() {
        // Weights are derivable state: the snapshot omits them and
        // from_bytes reconstructs them — matching a fresh recount, with
        // byte-deterministic round-trips.
        let occ: Vec<u64> = (0..300u64)
            .map(|i| i * 41 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        for id in occ.iter().filter(|x| *x % 5 == 0) {
            assert!(t.remove(*id));
        }
        assert!(t.insert(3));
        assert!(t.verify_weights());
        let bytes = t.to_bytes();
        let back = PrunedBloomSampleTree::from_bytes(&bytes).expect("decode");
        assert!(back.verify_weights(), "decoded weights must pass a recount");
        assert_eq!(back.occupied_count(), t.occupied_count());
        assert_eq!(back.occupied_ids(), t.occupied_ids());
        // Generation continuity: the decoded tree resumes the mutation
        // counter where the snapshot left off, and further mutations
        // keep counting monotonically — stamps issued before the
        // snapshot are never reused after it.
        assert_eq!(back.version(), t.version());
        assert_eq!(back.to_bytes(), bytes, "byte-deterministic round-trip");
        let mut back = back;
        let v = back.version();
        assert!(back.remove(3));
        assert_eq!(back.version(), v + 1);
        // The journal itself is not persisted: pre-snapshot stamps fall
        // past the horizon (full-reset fallback), never a silent hole.
        assert!(back.mutations_since(v).is_some(), "fresh tail covered");
        assert!(back.mutations_since(v - 1).is_none(), "history truncated");
    }

    #[test]
    fn collision_census_tracks_degenerate_probe_ids() {
        // Small m makes within-key probe collisions likely; the census
        // must equal a brute-force scan and follow every mutation, and
        // warm delta-maintained weights must match cold recounts even
        // when colliding ids are filter positives (the fallback path).
        let p = TreePlan {
            namespace: 1 << 14,
            m: 512,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 7,
            depth: 5,
            leaf_capacity: 1 << 9,
            target_accuracy: 0.9,
        };
        let occ: Vec<u64> = (0..(1 << 14)).step_by(3).collect();
        let mut t = PrunedBloomSampleTree::build(&p, &occ);
        let expect: Vec<u64> = occ
            .iter()
            .copied()
            .filter(|&x| !t.hasher().probes_distinct_bits(x))
            .collect();
        assert!(
            !expect.is_empty(),
            "m=512 must yield some degenerate-probe ids"
        );
        assert_eq!(t.colliding_ids(), expect.as_slice());
        // Mutations keep the census exact.
        let victim = expect[0];
        assert!(t.remove(victim));
        assert!(!t.colliding_ids().contains(&victim));
        assert!(t.insert(victim));
        assert_eq!(t.colliding_ids(), expect.as_slice());
        // The census survives a snapshot round-trip (rebuilt on decode).
        let back = PrunedBloomSampleTree::from_bytes(&t.to_bytes()).expect("decode");
        assert_eq!(back.colliding_ids(), expect.as_slice());
    }

    #[test]
    fn cyclic_snapshot_links_rejected_not_looped() {
        // A corrupt snapshot whose child links form a cycle must fail
        // decode with `Corrupt` — the weight rebuild walks untrusted
        // links and would otherwise loop or overflow the stack.
        let occ: Vec<u64> = (0..200u64).collect();
        let p = plan();
        let tree = PrunedBloomSampleTree::build(&p, &occ);
        let mut bytes = tree.to_bytes();
        // Layout: "BSTP" v(1) | plan(47) | live u32 | root u32 |
        // version u64 | nodes.
        // Node: start u64 | end u64 | level u32 | left u32 | right u32 |
        // occ_len u32 | occ ids | m/64 filter words.
        let words = p.m.div_ceil(64);
        let live = u32::from_le_bytes(bytes[52..56].try_into().unwrap()) as usize;
        let mut off = 68usize;
        let mut patched = false;
        for i in 0..live {
            let level = u32::from_le_bytes(bytes[off + 16..off + 20].try_into().unwrap());
            let occ_len =
                u32::from_le_bytes(bytes[off + 28..off + 32].try_into().unwrap()) as usize;
            if level != p.depth {
                // First internal node (on the left spine, reachable from
                // the root): point its left link at itself.
                bytes[off + 20..off + 24].copy_from_slice(&(i as u32).to_le_bytes());
                patched = true;
                break;
            }
            off += 32 + occ_len * 8 + words * 8;
        }
        assert!(patched, "tree must have an internal node");
        assert_eq!(
            PrunedBloomSampleTree::from_bytes(&bytes).err(),
            Some(crate::persistence::PersistError::Corrupt(
                "node links revisit a node"
            ))
        );
    }

    #[test]
    fn journal_replays_bounded_history() {
        let mut t = PrunedBloomSampleTree::empty(&plan());
        assert_eq!(t.version(), 0);
        assert!(t.mutations_since(0).is_some_and(|mut m| m.next().is_none()));
        assert!(t.insert(10));
        assert!(t.insert(20));
        assert!(t.remove(10));
        assert_eq!(t.version(), 3);
        let tail: Vec<(u64, bool)> = t.mutations_since(1).expect("covered").collect();
        assert_eq!(tail, vec![(20, true), (10, false)]);
        assert!(
            t.mutations_since(4).is_none(),
            "future stamps are not covered"
        );
        // Overflow the journal: history older than the cap is gone.
        for i in 0..DEFAULT_JOURNAL_CAP as u64 {
            let id = (i * 2 + 100) % (1 << 14);
            let _ = t.insert(id);
            let _ = t.remove(id);
        }
        assert!(t.mutations_since(0).is_none(), "truncated history");
        assert!(t
            .mutations_since(t.version() - DEFAULT_JOURNAL_CAP as u64)
            .is_some());
        // No-ops do not advance the version or the journal.
        let v = t.version();
        assert!(!t.remove(12_345));
        assert_eq!(t.version(), v);
    }

    #[test]
    fn journal_cap_knob_pins_horizon_at_the_boundary() {
        // A configured cap moves the repair horizon exactly: `cap`
        // mutations back is covered, `cap + 1` falls to the full-reset
        // path. Shrinking the cap trims remembered history immediately.
        let mut t = PrunedBloomSampleTree::empty(&plan());
        assert_eq!(t.journal_cap(), DEFAULT_JOURNAL_CAP);
        t.set_journal_cap(4);
        assert_eq!(t.journal_cap(), 4);
        for id in 0..10u64 {
            assert!(t.insert(id));
        }
        let v = t.version();
        assert_eq!(v, 10);
        // Boundary: exactly cap mutations of history are replayable...
        let tail: Vec<(u64, bool)> = t.mutations_since(v - 4).expect("at the cap").collect();
        assert_eq!(tail, vec![(6, true), (7, true), (8, true), (9, true)]);
        // ...one more is past the horizon.
        assert!(t.mutations_since(v - 5).is_none(), "past the cap");
        // Shrinking trims eagerly; clamping keeps the journal usable.
        t.set_journal_cap(1);
        assert!(t.mutations_since(v - 1).is_some());
        assert!(t.mutations_since(v - 2).is_none());
        t.set_journal_cap(0);
        assert_eq!(t.journal_cap(), 1, "cap clamps to >= 1");
    }

    #[test]
    fn insert_remove_interleaving() {
        let mut t = PrunedBloomSampleTree::empty(&plan());
        for i in 0..200u64 {
            // Duplicates return false; both outcomes are fine here.
            let _ = t.insert(i * 13 % (1 << 14));
        }
        let ids = t.occupied_ids();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.remove(*id));
            }
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.contains_occupied(*id), i % 2 != 0, "id {id}");
        }
    }
}
