//! The Pruned-BloomSampleTree (§5.2): a BloomSampleTree materialised only
//! over the occupied portion of the namespace.
//!
//! Node geometry matches the hypothetical complete tree exactly (same
//! ranges, same depth), but subtrees whose range holds no occupied id are
//! simply never created, and node filters store only occupied elements.
//! Leaves keep their occupied ids so the brute-force phase tests just
//! those — which is why measured accuracy *improves* as occupancy falls
//! (Figure 15): the effective namespace shrinks while `m` stays sized for
//! the full one.
//!
//! The tree grows dynamically: inserting a new id extends filters along
//! its root-to-leaf path and materialises missing nodes ("either we need
//! to insert this new element into already existing nodes in the tree, or
//! we need to create a new node (and potentially its subtree)").

use std::ops::Range;
use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bst_bloom::params::TreePlan;

use crate::tree::{LeafCandidates, NodeId, SampleTree};

struct PrunedNode {
    range: Range<u64>,
    filter: BloomFilter,
    left: Option<NodeId>,
    right: Option<NodeId>,
    /// Sorted occupied ids — populated for leaves only.
    occupied: Vec<u64>,
    level: u32,
}

/// An occupancy-aware BloomSampleTree.
pub struct PrunedBloomSampleTree {
    plan: TreePlan,
    hasher: Arc<BloomHasher>,
    nodes: Vec<PrunedNode>,
    root: Option<NodeId>,
    occupied_count: u64,
}

impl std::fmt::Debug for PrunedBloomSampleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PrunedBloomSampleTree(M={}, m={}, depth={}, nodes={}, occupied={})",
            self.plan.namespace,
            self.plan.m,
            self.plan.depth,
            self.node_count(),
            self.occupied_count
        )
    }
}

fn split(r: &Range<u64>) -> (Range<u64>, Range<u64>) {
    let mid = r.start + (r.end - r.start).div_ceil(2);
    (r.start..mid, mid..r.end)
}

impl PrunedBloomSampleTree {
    /// Builds the pruned tree over `occupied` (sorted, distinct ids within
    /// `[0, plan.namespace)`).
    ///
    /// # Panics
    /// Panics if `occupied` is unsorted, holds duplicates, or contains ids
    /// outside the namespace.
    pub fn build(plan: &TreePlan, occupied: &[u64]) -> Self {
        for w in occupied.windows(2) {
            assert!(w[0] < w[1], "occupied ids must be sorted and distinct");
        }
        if let Some(&last) = occupied.last() {
            assert!(last < plan.namespace, "occupied id outside namespace");
        }
        let hasher = Arc::new(plan.build_hasher());
        let mut tree = PrunedBloomSampleTree {
            plan: plan.clone(),
            hasher,
            nodes: Vec::new(),
            root: None,
            occupied_count: occupied.len() as u64,
        };
        tree.root = tree.build_node(0..plan.namespace, occupied, 0);
        tree
    }

    /// An empty tree ready for dynamic insertion.
    pub fn empty(plan: &TreePlan) -> Self {
        Self::build(plan, &[])
    }

    fn build_node(&mut self, range: Range<u64>, occ: &[u64], level: u32) -> Option<NodeId> {
        if occ.is_empty() {
            return None;
        }
        if level == self.plan.depth {
            // Leaf: filter over exactly the occupied ids in range.
            let filter = BloomFilter::from_keys(Arc::clone(&self.hasher), occ.iter().copied());
            let id = self.nodes.len() as NodeId;
            self.nodes.push(PrunedNode {
                range,
                filter,
                left: None,
                right: None,
                occupied: occ.to_vec(),
                level,
            });
            return Some(id);
        }
        let (lr, rr) = split(&range);
        let cut = occ.partition_point(|&x| x < lr.end);
        let left = self.build_node(lr, &occ[..cut], level + 1);
        let right = self.build_node(rr, &occ[cut..], level + 1);
        // Internal filter = union of children (≥ 1 child exists since occ
        // is non-empty).
        let mut filter: Option<BloomFilter> = None;
        for child in [left, right].into_iter().flatten() {
            match &mut filter {
                None => filter = Some(self.nodes[child as usize].filter.clone()),
                Some(f) => f.union_with(&self.nodes[child as usize].filter),
            }
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(PrunedNode {
            range,
            filter: filter.expect("non-empty occ implies a child"),
            left,
            right,
            occupied: Vec::new(),
            level,
        });
        Some(id)
    }

    /// Inserts a newly occupied id, updating filters along the path and
    /// materialising missing nodes. Returns `false` when the id was
    /// already present at its leaf.
    ///
    /// # Panics
    /// Panics if `id` is outside the namespace.
    pub fn insert(&mut self, id: u64) -> bool {
        assert!(id < self.plan.namespace, "id {id} outside namespace");
        // Check presence first so failure leaves filters untouched.
        if self.contains_occupied(id) {
            return false;
        }
        let root = match self.root {
            Some(r) => r,
            None => {
                let r = self.new_node(0..self.plan.namespace, 0);
                self.root = Some(r);
                r
            }
        };
        let mut cur = root;
        loop {
            self.nodes[cur as usize].filter.insert(id);
            let level = self.nodes[cur as usize].level;
            if level == self.plan.depth {
                let node = &mut self.nodes[cur as usize];
                let pos = node.occupied.partition_point(|&x| x < id);
                node.occupied.insert(pos, id);
                self.occupied_count += 1;
                return true;
            }
            let (lr, rr) = split(&self.nodes[cur as usize].range);
            let go_left = id < lr.end;
            let child_range = if go_left { lr } else { rr };
            let existing = if go_left {
                self.nodes[cur as usize].left
            } else {
                self.nodes[cur as usize].right
            };
            cur = match existing {
                Some(c) => c,
                None => {
                    let c = self.new_node(child_range, level + 1);
                    if go_left {
                        self.nodes[cur as usize].left = Some(c);
                    } else {
                        self.nodes[cur as usize].right = Some(c);
                    }
                    c
                }
            };
        }
    }

    /// Removes an occupied id, shrinking the tree: the id leaves its
    /// leaf's list, every filter on the path is rebuilt exactly (leaf from
    /// its remaining ids, ancestors as unions of their children), and
    /// subtrees whose occupancy drops to zero are unlinked. Returns `false`
    /// when the id was not present.
    ///
    /// Cost: `O(depth · m/64)` word operations plus the leaf rebuild —
    /// the §5.2 evolution story run in reverse. Unlinked nodes remain in
    /// the arena as unreachable tombstones until the tree is rebuilt.
    pub fn remove(&mut self, id: u64) -> bool {
        assert!(id < self.plan.namespace, "id {id} outside namespace");
        let Some(root) = self.root else {
            return false;
        };
        let (removed, now_empty) = self.remove_rec(root, id);
        if removed {
            self.occupied_count -= 1;
            if now_empty {
                self.root = None;
            }
        }
        removed
    }

    /// Recursive removal; returns (removed, subtree now empty).
    fn remove_rec(&mut self, node: NodeId, id: u64) -> (bool, bool) {
        let level = self.nodes[node as usize].level;
        if level == self.plan.depth {
            let n = &mut self.nodes[node as usize];
            let Ok(pos) = n.occupied.binary_search(&id) else {
                return (false, false);
            };
            n.occupied.remove(pos);
            // Rebuild the leaf filter exactly from the survivors.
            let ids = n.occupied.clone();
            let filter = BloomFilter::from_keys(Arc::clone(&self.hasher), ids);
            self.nodes[node as usize].filter = filter;
            let empty = self.nodes[node as usize].occupied.is_empty();
            return (true, empty);
        }
        let (lr, _) = split(&self.nodes[node as usize].range);
        let go_left = id < lr.end;
        let child = if go_left {
            self.nodes[node as usize].left
        } else {
            self.nodes[node as usize].right
        };
        let Some(child) = child else {
            return (false, false);
        };
        let (removed, child_empty) = self.remove_rec(child, id);
        if !removed {
            return (false, false);
        }
        if child_empty {
            let n = &mut self.nodes[node as usize];
            if go_left {
                n.left = None;
            } else {
                n.right = None;
            }
        }
        // Rebuild this node's filter as the union of surviving children.
        let (l, r) = {
            let n = &self.nodes[node as usize];
            (n.left, n.right)
        };
        let mut filter: Option<BloomFilter> = None;
        for c in [l, r].into_iter().flatten() {
            match &mut filter {
                None => filter = Some(self.nodes[c as usize].filter.clone()),
                Some(f) => f.union_with(&self.nodes[c as usize].filter),
            }
        }
        match filter {
            Some(f) => {
                self.nodes[node as usize].filter = f;
                (true, false)
            }
            None => {
                self.nodes[node as usize].filter.clear();
                (true, true)
            }
        }
    }

    fn new_node(&mut self, range: Range<u64>, level: u32) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(PrunedNode {
            range,
            filter: BloomFilter::new(Arc::clone(&self.hasher)),
            left: None,
            right: None,
            occupied: Vec::new(),
            level,
        });
        id
    }

    /// Whether `id` is an occupied namespace element (exact, via the leaf's
    /// id list — not a Bloom query).
    pub fn contains_occupied(&self, id: u64) -> bool {
        let mut cur = match self.root {
            Some(r) => r,
            None => return false,
        };
        loop {
            let node = &self.nodes[cur as usize];
            if node.level == self.plan.depth {
                return node.occupied.binary_search(&id).is_ok();
            }
            let (lr, _) = split(&node.range);
            let next = if id < lr.end { node.left } else { node.right };
            match next {
                Some(c) => cur = c,
                None => return false,
            }
        }
    }

    /// The plan the tree was built from.
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// Number of materialised nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of occupied ids.
    pub fn occupied_count(&self) -> u64 {
        self.occupied_count
    }

    /// Heap bytes of all node bit arrays (the Figure 14 metric).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.filter.heap_bytes()).sum()
    }

    /// Heap bytes including the leaves' occupied-id lists.
    pub fn memory_bytes_with_ids(&self) -> usize {
        self.memory_bytes()
            + self
                .nodes
                .iter()
                .map(|n| n.occupied.len() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }

    /// Serializes the pruned tree (plan, structure, occupied ids, node bit
    /// arrays) into a compact binary buffer.
    ///
    /// Removals unlink emptied subtrees but leave their nodes in the
    /// arena as unreachable tombstones; the snapshot **compacts** them
    /// away, writing only reachable nodes (in arena order, links
    /// remapped), so a long-mutated tree persists no dead weight and a
    /// freshly built tree round-trips byte-identically.
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        // Remap arena indices to reachable-only indices, arena order kept.
        let mut remap = vec![u32::MAX; self.nodes.len()];
        if let Some(root) = self.root {
            self.mark_reachable(root, &mut remap);
        }
        let mut live = 0u32;
        for slot in remap.iter_mut() {
            if *slot != u32::MAX {
                *slot = live;
                live += 1;
            }
        }
        let link = |child: Option<NodeId>| match child {
            Some(c) => remap[c as usize],
            None => u32::MAX,
        };
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"BSTP");
        buf.put_u8(crate::persistence::VERSION);
        crate::persistence::put_plan(&mut buf, &self.plan);
        buf.put_u32_le(live);
        buf.put_u32_le(link(self.root));
        for (node, _) in self
            .nodes
            .iter()
            .zip(&remap)
            .filter(|(_, &slot)| slot != u32::MAX)
        {
            buf.put_u64_le(node.range.start);
            buf.put_u64_le(node.range.end);
            buf.put_u32_le(node.level);
            buf.put_u32_le(link(node.left));
            buf.put_u32_le(link(node.right));
            buf.put_u32_le(node.occupied.len() as u32);
            for &id in &node.occupied {
                buf.put_u64_le(id);
            }
            crate::persistence::put_words(&mut buf, node.filter.bits().words());
        }
        buf.to_vec()
    }

    /// Marks every node reachable from `node` with a non-MAX sentinel in
    /// `remap` (resolved to compact indices by the caller).
    fn mark_reachable(&self, node: NodeId, remap: &mut [u32]) {
        remap[node as usize] = 0;
        let n = &self.nodes[node as usize];
        for child in [n.left, n.right].into_iter().flatten() {
            self.mark_reachable(child, remap);
        }
    }

    /// Reconstructs a pruned tree serialized with [`Self::to_bytes`].
    pub fn from_bytes(input: &[u8]) -> Result<Self, crate::persistence::PersistError> {
        use crate::persistence::{check_header, get_plan, get_words, PersistError};
        use bytes::Buf;
        let mut input = input;
        check_header(&mut input, b"BSTP")?;
        let plan = get_plan(&mut input)?;
        if input.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        let node_count = input.get_u32_le() as usize;
        let root_raw = input.get_u32_le();
        let hasher = Arc::new(plan.build_hasher());
        let words_per_node = plan.m.div_ceil(64);
        let mut nodes = Vec::with_capacity(node_count);
        let mut occupied_count = 0u64;
        let link = |raw: u32| -> Result<Option<NodeId>, PersistError> {
            if raw == u32::MAX {
                Ok(None)
            } else if (raw as usize) < node_count {
                Ok(Some(raw))
            } else {
                Err(PersistError::Corrupt("child link out of range"))
            }
        };
        for _ in 0..node_count {
            if input.remaining() < 8 + 8 + 4 + 4 + 4 + 4 {
                return Err(PersistError::Truncated);
            }
            let start = input.get_u64_le();
            let end = input.get_u64_le();
            if start >= end || end > plan.namespace {
                return Err(PersistError::Corrupt("node range invalid"));
            }
            let level = input.get_u32_le();
            let left = link(input.get_u32_le())?;
            let right = link(input.get_u32_le())?;
            let occ_len = input.get_u32_le() as usize;
            if input.remaining() < occ_len * 8 {
                return Err(PersistError::Truncated);
            }
            let mut occupied = Vec::with_capacity(occ_len);
            for _ in 0..occ_len {
                occupied.push(input.get_u64_le());
            }
            if level == plan.depth {
                occupied_count += occ_len as u64;
            }
            let words = get_words(&mut input, words_per_node)?;
            let bits = bst_bloom::bitvec::BitVec::from_words(words, plan.m);
            nodes.push(PrunedNode {
                range: start..end,
                filter: BloomFilter::from_parts(bits, Arc::clone(&hasher)),
                left,
                right,
                occupied,
                level,
            });
        }
        let root = if root_raw == u32::MAX {
            None
        } else if (root_raw as usize) < node_count {
            Some(root_raw)
        } else {
            return Err(PersistError::Corrupt("root link out of range"));
        };
        Ok(PrunedBloomSampleTree {
            plan,
            hasher,
            nodes,
            root,
            occupied_count,
        })
    }

    /// All occupied ids, ascending (walks the leaves).
    pub fn occupied_ids(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.occupied_count as usize);
        if let Some(root) = self.root {
            self.collect_ids(root, &mut out);
        }
        out
    }

    fn collect_ids(&self, node: NodeId, out: &mut Vec<u64>) {
        let n = &self.nodes[node as usize];
        if n.level == self.plan.depth {
            out.extend_from_slice(&n.occupied);
            return;
        }
        for child in [n.left, n.right].into_iter().flatten() {
            self.collect_ids(child, out);
        }
    }
}

impl SampleTree for PrunedBloomSampleTree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node as usize].level == self.plan.depth
    }

    fn children(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        let n = &self.nodes[node as usize];
        (n.left, n.right)
    }

    fn filter(&self, node: NodeId) -> &BloomFilter {
        &self.nodes[node as usize].filter
    }

    fn range(&self, node: NodeId) -> Range<u64> {
        self.nodes[node as usize].range.clone()
    }

    fn leaf_candidates(&self, node: NodeId) -> LeafCandidates<'_> {
        debug_assert!(self.is_leaf(node));
        LeafCandidates::Slice(self.nodes[node as usize].occupied.iter())
    }

    fn hasher(&self) -> &Arc<BloomHasher> {
        &self.hasher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::OpStats;
    use crate::reconstruct::BstReconstructor;
    use crate::sampler::BstSampler;
    use crate::tree::BloomSampleTree;
    use bst_bloom::hash::HashKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> TreePlan {
        TreePlan {
            namespace: 1 << 16,
            m: 1 << 15,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 21,
            depth: 6,
            leaf_capacity: 1 << 10,
            target_accuracy: 0.9,
        }
    }

    fn occupied() -> Vec<u64> {
        // Two clusters plus scattered ids: most subtrees stay unbuilt.
        let mut v: Vec<u64> = (1000..1400u64).collect();
        v.extend(40_000..40_200u64);
        v.extend((0..50u64).map(|i| 60_000 + i * 97));
        v
    }

    #[test]
    fn build_materialises_only_needed_subtrees() {
        let t = PrunedBloomSampleTree::build(&plan(), &occupied());
        let full_nodes = (1usize << 7) - 1;
        assert!(
            t.node_count() < full_nodes / 2,
            "pruned tree has {} nodes, full tree {}",
            t.node_count(),
            full_nodes
        );
        assert_eq!(t.occupied_count(), occupied().len() as u64);
        assert_eq!(t.occupied_ids(), occupied());
    }

    #[test]
    fn geometry_matches_complete_tree() {
        let t = PrunedBloomSampleTree::build(&plan(), &occupied());
        // Every leaf range must have complete-tree width.
        let full = BloomSampleTree::build(&plan());
        let full_first_leaf = (1u32 << 6) - 1;
        let full_widths: std::collections::HashSet<(u64, u64)> = (full_first_leaf
            ..full.node_count() as u32)
            .map(|i| {
                let r = full.range(i);
                (r.start, r.end)
            })
            .collect();
        for id in 0..t.node_count() as u32 {
            if t.is_leaf(id) {
                let r = t.range(id);
                assert!(
                    full_widths.contains(&(r.start, r.end)),
                    "pruned leaf {:?} not a complete-tree leaf",
                    r
                );
            }
        }
    }

    #[test]
    fn sampling_over_pruned_tree_is_sound() {
        let occ = occupied();
        let t = PrunedBloomSampleTree::build(&plan(), &occ);
        let members: Vec<u64> = occ.iter().copied().step_by(7).collect();
        let q = t.query_filter(members.iter().copied());
        let sampler = BstSampler::new(&t);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OpStats::new();
        for _ in 0..100 {
            let s = sampler.sample(&q, &mut rng, &mut stats).expect("sample");
            // Samples come from occupied ids only.
            assert!(occ.binary_search(&s).is_ok(), "sampled unoccupied {s}");
            assert!(q.contains(s));
        }
    }

    #[test]
    fn reconstruction_matches_full_tree_on_occupied_sets() {
        let occ = occupied();
        let p = plan();
        let pruned = PrunedBloomSampleTree::build(&p, &occ);
        let full = BloomSampleTree::build(&p);
        let members: Vec<u64> = occ.iter().copied().step_by(3).collect();
        let q = pruned.query_filter(members.iter().copied());
        let mut s1 = OpStats::new();
        let rec_pruned = BstReconstructor::new(&pruned).reconstruct(&q, &mut s1);
        let mut s2 = OpStats::new();
        let rec_full = BstReconstructor::new(&full).reconstruct(&q, &mut s2);
        // The pruned tree answers only over occupied ids; the full tree may
        // add false positives from unoccupied ids. Restricting the full
        // answer to occupied ids must give the pruned answer.
        let rec_full_occ: Vec<u64> = rec_full
            .into_iter()
            .filter(|x| occ.binary_search(x).is_ok())
            .collect();
        assert_eq!(rec_pruned, rec_full_occ);
        // And the pruned tree does strictly less membership work.
        assert!(s1.memberships <= s2.memberships);
    }

    #[test]
    fn dynamic_insert_equals_batch_build() {
        let occ = occupied();
        let p = plan();
        let batch = PrunedBloomSampleTree::build(&p, &occ);
        let mut dynamic = PrunedBloomSampleTree::empty(&p);
        // Insert in a scrambled order.
        let mut shuffled = occ.clone();
        let mut rng = StdRng::seed_from_u64(2);
        for i in (1..shuffled.len()).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            shuffled.swap(i, j);
        }
        for id in shuffled {
            assert!(dynamic.insert(id));
        }
        assert_eq!(dynamic.occupied_count(), batch.occupied_count());
        assert_eq!(dynamic.occupied_ids(), batch.occupied_ids());
        // Same query behaviour even if node arena order differs.
        let q = batch.query_filter(occ.iter().copied().take(100));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        let r1 = BstReconstructor::new(&batch).reconstruct(&q, &mut s1);
        let r2 = BstReconstructor::new(&dynamic).reconstruct(&q, &mut s2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let p = plan();
        let mut t = PrunedBloomSampleTree::empty(&p);
        assert!(t.insert(42));
        assert!(!t.insert(42));
        assert_eq!(t.occupied_count(), 1);
    }

    #[test]
    fn empty_tree_has_no_root() {
        let t = PrunedBloomSampleTree::empty(&plan());
        assert_eq!(t.root(), None);
        assert_eq!(t.occupied_count(), 0);
        let q = t.query_filter([1u64]);
        let mut stats = OpStats::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(BstSampler::new(&t).sample(&q, &mut rng, &mut stats), None);
        assert!(BstReconstructor::new(&t)
            .reconstruct(&q, &mut stats)
            .is_empty());
    }

    #[test]
    fn memory_grows_with_occupancy() {
        let p = plan();
        let sparse = PrunedBloomSampleTree::build(&p, &[5, 10, 15]);
        let dense = PrunedBloomSampleTree::build(&p, &occupied());
        assert!(sparse.memory_bytes() < dense.memory_bytes());
        assert!(dense.memory_bytes_with_ids() > dense.memory_bytes());
        // Both are far below the complete tree.
        let full = BloomSampleTree::build(&p);
        assert!(dense.memory_bytes() < full.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "outside namespace")]
    fn out_of_namespace_id_panics() {
        let p = plan();
        let _ = PrunedBloomSampleTree::build(&p, &[1 << 16]);
    }

    #[test]
    #[should_panic(expected = "sorted and distinct")]
    fn unsorted_occupied_panics() {
        let p = plan();
        let _ = PrunedBloomSampleTree::build(&p, &[5, 3]);
    }
}

#[cfg(test)]
mod removal_tests {
    use super::*;
    use crate::metrics::OpStats;
    use crate::reconstruct::BstReconstructor;
    use crate::tree::SampleTree;
    use bst_bloom::hash::HashKind;

    fn plan() -> TreePlan {
        TreePlan {
            namespace: 1 << 14,
            m: 8192,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 77,
            depth: 5,
            leaf_capacity: 1 << 9,
            target_accuracy: 0.9,
        }
    }

    #[test]
    fn remove_then_queries_forget_the_id() {
        let occ: Vec<u64> = (0..400u64)
            .map(|i| i * 37 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        let victim = occ[123];
        assert!(t.contains_occupied(victim));
        assert!(t.remove(victim));
        assert!(!t.contains_occupied(victim));
        assert!(!t.remove(victim), "double removal must fail");
        assert_eq!(t.occupied_count(), occ.len() as u64 - 1);
        // Reconstruction of a filter containing the victim no longer
        // returns it (leaves only test occupied ids).
        let q = t.query_filter([victim]);
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        assert!(!rec.contains(&victim));
    }

    #[test]
    fn filters_stay_exact_after_removals() {
        // After removals, the tree must behave identically to a fresh
        // build over the surviving ids.
        let occ: Vec<u64> = (0..300u64)
            .map(|i| i * 53 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        let survivors: Vec<u64> = occ.iter().copied().filter(|x| x % 3 != 0).collect();
        for id in occ.iter().filter(|x| *x % 3 == 0) {
            assert!(t.remove(*id));
        }
        assert_eq!(t.occupied_ids(), survivors);
        let fresh = PrunedBloomSampleTree::build(&plan(), &survivors);
        let q = t.query_filter(survivors.iter().copied().take(60));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        assert_eq!(
            BstReconstructor::new(&t).reconstruct(&q, &mut s1),
            BstReconstructor::new(&fresh).reconstruct(&q, &mut s2),
        );
        // Filters were rebuilt exactly, so pruning work matches too.
        assert_eq!(s1.intersections, s2.intersections);
        assert_eq!(s1.memberships, s2.memberships);
    }

    #[test]
    fn removing_everything_empties_the_tree() {
        let occ: Vec<u64> = (100..150u64).collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        for id in &occ {
            assert!(t.remove(*id));
        }
        assert_eq!(t.occupied_count(), 0);
        assert_eq!(t.root(), None);
        // Insert works again after total removal.
        assert!(t.insert(42));
        assert!(t.contains_occupied(42));
    }

    #[test]
    fn snapshot_compacts_tombstones() {
        let occ: Vec<u64> = (0..256u64)
            .map(|i| i * 53 % (1 << 14))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut t = PrunedBloomSampleTree::build(&plan(), &occ);
        // Remove a contiguous cluster so whole subtrees unlink.
        for id in &occ {
            if *id < 8_000 {
                assert!(t.remove(*id));
            }
        }
        let survivors: Vec<u64> = occ.iter().copied().filter(|&x| x >= 8_000).collect();
        let fresh = PrunedBloomSampleTree::build(&plan(), &survivors);
        assert!(
            t.node_count() > fresh.node_count(),
            "mutated arena keeps tombstones in memory"
        );
        // The snapshot drops them: same byte length as a fresh build's,
        // and the decoded tree behaves identically.
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), fresh.to_bytes().len());
        let back = PrunedBloomSampleTree::from_bytes(&bytes).expect("decode");
        assert_eq!(back.node_count(), fresh.node_count());
        assert_eq!(back.occupied_ids(), survivors);
        let q = t.query_filter(survivors.iter().copied().take(40));
        let mut s1 = OpStats::new();
        let mut s2 = OpStats::new();
        assert_eq!(
            BstReconstructor::new(&back).reconstruct(&q, &mut s1),
            BstReconstructor::new(&t).reconstruct(&q, &mut s2),
        );
    }

    #[test]
    fn insert_remove_interleaving() {
        let mut t = PrunedBloomSampleTree::empty(&plan());
        for i in 0..200u64 {
            // Duplicates return false; both outcomes are fine here.
            let _ = t.insert(i * 13 % (1 << 14));
        }
        let ids = t.occupied_ids();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.remove(*id));
            }
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.contains_occupied(*id), i % 2 != 0, "id {id}");
        }
    }
}
