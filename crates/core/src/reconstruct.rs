//! Set reconstruction with the BloomSampleTree (§6).
//!
//! A recursive traversal: subtrees whose filters have an empty intersection
//! with the query filter are pruned; surviving leaves are brute-force
//! scanned and their matches unioned. Left-to-right traversal yields the
//! reconstruction already sorted.
//!
//! Two pruning disciplines are offered (see `sampler` module docs for the
//! full rationale):
//!
//! * **Sound** (default): a branch is pruned only when the carried
//!   intersection has fewer than `k` set bits — provably no element of
//!   `S ∪ S(B)` can be lost, so the result is exactly the filter's positive
//!   set (what a DictionaryAttack scan returns), at the cost of weaker
//!   pruning when `m` is tight.
//! * **Paper (§5.6)**: estimate-threshold pruning — the operation counts of
//!   Figures 8–12, but with a small per-element probability of dropping
//!   true elements when estimates are noisy.

use bst_bloom::estimate::intersection_estimate;
use bst_bloom::filter::BloomFilter;

use crate::error::BstError;
use crate::metrics::OpStats;
use crate::sampler::{Liveness, QueryMemo, DEFAULT_THRESHOLD};
use crate::tree::{NodeId, SampleTree};

/// Reconstruction configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconstructConfig {
    /// Branch-emptiness rule.
    pub liveness: Liveness,
    /// Intersect the query with node filters on the way down.
    pub carry_intersection: bool,
}

impl Default for ReconstructConfig {
    fn default() -> Self {
        ReconstructConfig {
            liveness: Liveness::BitOverlap,
            carry_intersection: true,
        }
    }
}

impl ReconstructConfig {
    /// The paper's §5.6 pruning: estimate threshold, no carried filter.
    pub fn paper() -> Self {
        ReconstructConfig {
            liveness: Liveness::EstimateThreshold(DEFAULT_THRESHOLD),
            carry_intersection: false,
        }
    }

    /// Checks the configuration's numeric invariants, naming the broken
    /// one. [`BstReconstructor::with_config`] asserts the same invariants.
    pub fn validate(&self) -> Result<(), BstError> {
        if let Liveness::EstimateThreshold(tau) = self.liveness {
            if !(tau.is_finite() && tau >= 0.0) {
                return Err(BstError::InvalidConfig(
                    "liveness threshold must be finite and non-negative",
                ));
            }
        }
        Ok(())
    }
}

/// Reconstructor bound to a tree.
pub struct BstReconstructor<'t, T: SampleTree> {
    tree: &'t T,
    cfg: ReconstructConfig,
}

impl<'t, T: SampleTree> BstReconstructor<'t, T> {
    /// Creates a reconstructor with the sound default configuration.
    pub fn new(tree: &'t T) -> Self {
        BstReconstructor {
            tree,
            cfg: ReconstructConfig::default(),
        }
    }

    /// Creates a reconstructor with explicit configuration.
    pub fn with_config(tree: &'t T, cfg: ReconstructConfig) -> Self {
        if let Liveness::EstimateThreshold(tau) = cfg.liveness {
            assert!(tau >= 0.0, "threshold must be non-negative");
        }
        BstReconstructor { tree, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReconstructConfig {
        &self.cfg
    }

    /// Reconstructs the set stored in `query` — every namespace element all
    /// of whose bits are set, i.e. `S ∪ S(B)`. Sorted ascending.
    pub fn reconstruct(&self, query: &BloomFilter, stats: &mut OpStats) -> Vec<u64> {
        let mut out = Vec::new();
        self.reconstruct_with(query, stats, |x| out.push(x));
        out
    }

    /// [`Self::reconstruct`] with typed errors and a persistent
    /// [`QueryMemo`]: repeated reconstructions of the same filter skip the
    /// liveness intersections and leaf scans of earlier walks.
    pub fn try_reconstruct_memo(
        &self,
        query: &BloomFilter,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> Result<Vec<u64>, BstError> {
        let root = self.tree.root().ok_or(BstError::EmptyTree)?;
        if query.is_empty() {
            return Err(BstError::EmptyFilter);
        }
        let full = self.tree.range(root);
        let mut out = Vec::new();
        self.range_walk(query, full, memo, stats, &mut |x| out.push(x));
        // A full-range walk determines the live-leaf weight for free.
        memo.cached_count = Some(out.len() as u64);
        Ok(out)
    }

    /// The number of elements [`Self::try_reconstruct_memo`] would return,
    /// without materialising the set: the query's **live-leaf weight** —
    /// matching candidates summed over every live leaf. The weight is
    /// maintained in the memo: the first call runs the memoized
    /// reconstruction walk and caches the count, and later calls answer
    /// in O(1) until a mutation invalidates the cache (the
    /// [`crate::query::Query`] handle repairs the memo along mutated
    /// paths, so even the refresh after occupancy churn re-evaluates only
    /// O(depth) nodes).
    pub fn try_count_memo(
        &self,
        query: &BloomFilter,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> Result<u64, BstError> {
        let root = self.tree.root().ok_or(BstError::EmptyTree)?;
        if query.is_empty() {
            return Err(BstError::EmptyFilter);
        }
        if let Some(count) = memo.cached_count {
            return Ok(count);
        }
        let full = self.tree.range(root);
        let count = self.range_walk(query, full, memo, stats, &mut |_| {}) as u64;
        memo.cached_count = Some(count);
        Ok(count)
    }

    /// Visitor variant: calls `visit` for each reconstructed element in
    /// ascending order without materialising the set. Returns the count.
    pub fn reconstruct_with<F: FnMut(u64)>(
        &self,
        query: &BloomFilter,
        stats: &mut OpStats,
        visit: F,
    ) -> usize {
        let Some(root) = self.tree.root() else {
            return 0;
        };
        let full = self.tree.range(root);
        self.reconstruct_range_with(query, full, stats, visit)
    }

    /// Range-restricted reconstruction: only elements of `S ∪ S(B)` inside
    /// `window` are returned, and subtrees disjoint from the window are
    /// never visited — the tree's range structure makes this free, unlike
    /// a flat namespace scan.
    pub fn reconstruct_range(
        &self,
        query: &BloomFilter,
        window: std::ops::Range<u64>,
        stats: &mut OpStats,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        self.reconstruct_range_with(query, window, stats, |x| out.push(x));
        out
    }

    /// [`Self::reconstruct_range`] with typed errors and a persistent
    /// [`QueryMemo`]. An empty window yields `Ok(vec![])`.
    pub fn try_reconstruct_range_memo(
        &self,
        query: &BloomFilter,
        window: std::ops::Range<u64>,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> Result<Vec<u64>, BstError> {
        self.tree.root().ok_or(BstError::EmptyTree)?;
        if query.is_empty() {
            return Err(BstError::EmptyFilter);
        }
        let mut out = Vec::new();
        self.range_walk(query, window, memo, stats, &mut |x| out.push(x));
        Ok(out)
    }

    /// Visitor variant of [`Self::reconstruct_range`]. Returns the count.
    pub fn reconstruct_range_with<F: FnMut(u64)>(
        &self,
        query: &BloomFilter,
        window: std::ops::Range<u64>,
        stats: &mut OpStats,
        mut visit: F,
    ) -> usize {
        if self.tree.root().is_none() || query.is_empty() {
            return 0;
        }
        let mut memo = QueryMemo::new();
        self.range_walk(query, window, &mut memo, stats, &mut visit)
    }

    /// Shared entry for all reconstruction walks.
    fn range_walk<F: FnMut(u64)>(
        &self,
        query: &BloomFilter,
        window: std::ops::Range<u64>,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
        visit: &mut F,
    ) -> usize {
        let Some(root) = self.tree.root() else {
            return 0;
        };
        if window.start >= window.end {
            return 0;
        }
        self.walk(root, query, &window, memo, stats, visit)
    }

    /// Liveness of one child under the reconstruction pruning rule:
    /// one intersection op on a memo miss, a hash lookup on a hit (sound
    /// because each node is reached by exactly one root path, so the
    /// carried filter at a node is determined by its id).
    fn child_live(
        &self,
        child: NodeId,
        carried: &BloomFilter,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
    ) -> bool {
        if let Some(&live) = memo.recon_live.get(&child) {
            return live;
        }
        stats.intersections += 1;
        let f = self.tree.filter(child);
        let t_and = f.and_count(carried);
        let live = match self.cfg.liveness {
            Liveness::BitOverlap => t_and >= f.k(),
            Liveness::EstimateThreshold(tau) => {
                intersection_estimate(f.m(), f.k(), f.count_ones(), carried.count_ones(), t_and)
                    > tau
            }
        };
        memo.recon_live.insert(child, live);
        live
    }

    /// Scans a leaf. Leaves fully inside the window go through the shared
    /// match memo; partially-covered leaves are scanned directly (caching
    /// a window-restricted scan would poison full-range lookups).
    fn scan_leaf<F: FnMut(u64)>(
        &self,
        node: NodeId,
        query: &BloomFilter,
        window: &std::ops::Range<u64>,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
        visit: &mut F,
    ) -> usize {
        let leaf_range = self.tree.range(node);
        if window.start <= leaf_range.start && leaf_range.end <= window.end {
            if let Some(cached) = memo.leaves.get(&node) {
                for &x in cached.iter() {
                    visit(x);
                }
                return cached.len();
            }
            // Bulk-membership kernel: layout dispatch hoisted out of the
            // candidate loop (word probes for blocked layouts, a plain
            // `contains` loop — identical order and results — otherwise).
            let mut matches = Vec::new();
            stats.memberships += query.for_each_member(self.tree.leaf_candidates(node), |x| {
                visit(x);
                matches.push(x);
            });
            let found = matches.len();
            memo.leaves.insert(node, std::sync::Arc::new(matches));
            return found;
        }
        let mut found = 0usize;
        stats.memberships += query.for_each_member(
            self.tree
                .leaf_candidates(node)
                .filter(|x| window.contains(x)),
            |x| {
                visit(x);
                found += 1;
            },
        );
        found
    }

    /// Recursive traversal. The carried filter a node would receive on the
    /// old eager descent equals `query ∧ filter(node)` bit-for-bit,
    /// because tree node filters are laminar (each child is a subset of
    /// its parent, so ancestor ANDs are absorbed); it is therefore
    /// materialised *lazily*, only when some child's liveness is not yet
    /// memoized — a fully-warm walk performs no filter operations at all.
    fn walk<F: FnMut(u64)>(
        &self,
        node: NodeId,
        query: &BloomFilter,
        window: &std::ops::Range<u64>,
        memo: &mut QueryMemo,
        stats: &mut OpStats,
        visit: &mut F,
    ) -> usize {
        stats.nodes_visited += 1;
        if self.tree.is_leaf(node) {
            return self.scan_leaf(node, query, window, memo, stats, visit);
        }
        let (lc, rc) = self.tree.children(node);
        let mut carried_here: Option<BloomFilter> = None;
        let mut found = 0usize;
        for child in [lc, rc].into_iter().flatten() {
            let r = self.tree.range(child);
            if r.end <= window.start || r.start >= window.end {
                continue; // disjoint from the window: free pruning
            }
            let live = match memo.recon_live.get(&child) {
                Some(&l) => l,
                None => {
                    let carried = carried_here.get_or_insert_with(|| {
                        if self.cfg.carry_intersection {
                            stats.intersections += 1;
                            BloomFilter::intersection(query, self.tree.filter(node))
                        } else {
                            query.clone()
                        }
                    });
                    self.child_live(child, carried, memo, stats)
                }
            };
            if live {
                found += self.walk(child, query, window, memo, stats, visit);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BloomSampleTree;
    use bst_bloom::hash::HashKind;
    use bst_bloom::params::TreePlan;

    fn tree(m: usize, namespace: u64, depth: u32) -> BloomSampleTree {
        BloomSampleTree::build(&TreePlan {
            namespace,
            m,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 5,
            depth,
            leaf_capacity: namespace.div_ceil(1 << depth),
            target_accuracy: 0.9,
        })
    }

    #[test]
    fn sound_mode_equals_dictionary_attack_exactly() {
        // The defining property of BitOverlap liveness: the reconstruction
        // is exactly the filter's positive set.
        let t = tree(1 << 15, 2048, 4);
        let keys: Vec<u64> = (0..120u64).map(|i| i * 17).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        let scan: Vec<u64> = (0..2048u64).filter(|&x| q.contains(x)).collect();
        assert_eq!(rec, scan);
    }

    #[test]
    fn sound_mode_never_loses_elements_even_with_tiny_m() {
        // Deliberately noisy filter: estimates are garbage, but bit-overlap
        // liveness cannot prune a subtree containing a true element.
        let t = tree(512, 2048, 4);
        let keys: Vec<u64> = (0..60u64).map(|i| i * 31 + 4).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        for k in &keys {
            assert!(rec.binary_search(k).is_ok(), "lost element {k}");
        }
    }

    #[test]
    fn high_accuracy_reconstruction_is_exact() {
        let t = tree(1 << 18, 4096, 5);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 40 + 1).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        assert_eq!(rec, keys);
    }

    #[test]
    fn result_is_sorted_and_distinct() {
        let t = tree(1 << 14, 4096, 5);
        let keys: Vec<u64> = (0..300u64).map(|i| (i * 13) % 4096).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        assert!(rec.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_mode_is_cheaper_than_sound_mode() {
        let t = tree(1 << 14, 1 << 14, 7);
        let keys: Vec<u64> = (1000..1100u64).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut sound_stats = OpStats::new();
        let sound = BstReconstructor::new(&t).reconstruct(&q, &mut sound_stats);
        let mut paper_stats = OpStats::new();
        let paper = BstReconstructor::with_config(&t, ReconstructConfig::paper())
            .reconstruct(&q, &mut paper_stats);
        // Paper mode prunes at least as aggressively.
        assert!(paper_stats.memberships <= sound_stats.memberships);
        // Sound result contains everything paper mode found.
        for x in &paper {
            assert!(sound.binary_search(x).is_ok());
        }
        for k in &keys {
            assert!(sound.binary_search(k).is_ok());
        }
    }

    #[test]
    fn empty_filter_reconstructs_empty() {
        let t = tree(1 << 14, 2048, 4);
        let q = t.query_filter(std::iter::empty());
        let mut stats = OpStats::new();
        assert!(BstReconstructor::new(&t)
            .reconstruct(&q, &mut stats)
            .is_empty());
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    fn pruning_reduces_memberships() {
        // A tightly clustered set touches few leaves.
        let t = tree(1 << 17, 1 << 14, 7);
        let keys: Vec<u64> = (1000..1100u64).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut stats = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut stats);
        assert!(rec.len() >= 100);
        assert!(
            stats.memberships < (1 << 14) / 4,
            "pruning ineffective: {} memberships",
            stats.memberships
        );
    }

    #[test]
    fn visitor_matches_materialised() {
        let t = tree(1 << 14, 2048, 4);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 19).collect();
        let q = t.query_filter(keys.iter().copied());
        let mut s1 = OpStats::new();
        let rec = BstReconstructor::new(&t).reconstruct(&q, &mut s1);
        let mut s2 = OpStats::new();
        let mut visited = Vec::new();
        let n = BstReconstructor::new(&t).reconstruct_with(&q, &mut s2, |x| visited.push(x));
        assert_eq!(rec, visited);
        assert_eq!(n, rec.len());
        assert_eq!(s1, s2);
    }

    #[test]
    fn extreme_threshold_prunes_all() {
        let t = tree(1 << 14, 2048, 4);
        let q = t.query_filter([7u64]);
        let mut stats = OpStats::new();
        let rec = BstReconstructor::with_config(
            &t,
            ReconstructConfig {
                liveness: Liveness::EstimateThreshold(1e12),
                carry_intersection: false,
            },
        )
        .reconstruct(&q, &mut stats);
        assert!(rec.is_empty());
    }
}
