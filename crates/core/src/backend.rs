//! Backend polymorphism for the facade: one [`TreeBackend`] serves both
//! the dense, complete [`BloomSampleTree`] and the occupancy-aware
//! [`PrunedBloomSampleTree`] through the same `query()`/`query_batch()`
//! surface.
//!
//! The sampling and reconstruction algorithms are generic over
//! [`SampleTree`], so an enum (rather than `dyn` dispatch) keeps every
//! hot-path call statically dispatched inside each arm, monomorphised
//! once per backend, with no vtable in the descent loop.

use std::ops::Range;
use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bst_bloom::params::TreePlan;
use bytes::{Buf, BufMut};

use crate::persistence::PersistError;
use crate::pruned::PrunedBloomSampleTree;
use crate::tree::{BloomSampleTree, LeafCandidates, NodeId, SampleTree};

/// Snapshot tag for a dense backend.
const TAG_DENSE: u8 = 0;
/// Snapshot tag for a pruned backend.
const TAG_PRUNED: u8 = 1;

/// The tree a [`crate::system::BstSystem`] serves queries from: either the
/// complete tree of Definition 5.1 (static, fully occupied namespaces) or
/// the pruned variant of §5.2 (sparse / dynamic occupancy).
pub enum TreeBackend {
    /// The complete [`BloomSampleTree`] over the whole namespace.
    Dense(BloomSampleTree),
    /// The occupancy-aware [`PrunedBloomSampleTree`].
    Pruned(PrunedBloomSampleTree),
}

impl std::fmt::Debug for TreeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeBackend::Dense(t) => write!(f, "{t:?}"),
            TreeBackend::Pruned(t) => write!(f, "{t:?}"),
        }
    }
}

impl TreeBackend {
    /// The plan the backend was built from.
    pub fn plan(&self) -> &TreePlan {
        match self {
            TreeBackend::Dense(t) => t.plan(),
            TreeBackend::Pruned(t) => t.plan(),
        }
    }

    /// Tree depth (leaves at this level; 0 = root-only).
    pub fn depth(&self) -> u32 {
        self.plan().depth
    }

    /// Namespace size `M`.
    pub fn namespace(&self) -> u64 {
        self.plan().namespace
    }

    /// Number of materialised nodes.
    pub fn node_count(&self) -> usize {
        match self {
            TreeBackend::Dense(t) => t.node_count(),
            TreeBackend::Pruned(t) => t.node_count(),
        }
    }

    /// Heap bytes of all node bit arrays.
    pub fn memory_bytes(&self) -> usize {
        match self {
            TreeBackend::Dense(t) => t.memory_bytes(),
            TreeBackend::Pruned(t) => t.memory_bytes(),
        }
    }

    /// Number of occupied namespace ids (the full namespace for a dense
    /// backend).
    pub fn occupied_count(&self) -> u64 {
        match self {
            TreeBackend::Dense(t) => t.namespace(),
            TreeBackend::Pruned(t) => t.occupied_count(),
        }
    }

    /// Whether this is the pruned (occupancy-aware) backend.
    pub fn is_pruned(&self) -> bool {
        matches!(self, TreeBackend::Pruned(_))
    }

    /// The dense tree, if that is the active backend.
    pub fn as_dense(&self) -> Option<&BloomSampleTree> {
        match self {
            TreeBackend::Dense(t) => Some(t),
            TreeBackend::Pruned(_) => None,
        }
    }

    /// The pruned tree, if that is the active backend.
    pub fn as_pruned(&self) -> Option<&PrunedBloomSampleTree> {
        match self {
            TreeBackend::Dense(_) => None,
            TreeBackend::Pruned(t) => Some(t),
        }
    }

    /// Serializes the backend as `tag u8 | len u64 | tree bytes`, appended
    /// to `buf` (each tree keeps its own magic/version inside the payload).
    pub(crate) fn put_bytes(&self, buf: &mut bytes::BytesMut) {
        let (tag, payload) = match self {
            TreeBackend::Dense(t) => (TAG_DENSE, t.to_bytes()),
            TreeBackend::Pruned(t) => (TAG_PRUNED, t.to_bytes()),
        };
        buf.put_u8(tag);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
    }

    /// Decodes a backend serialized with [`Self::put_bytes`], advancing
    /// `input` past the payload.
    pub(crate) fn get_bytes(input: &mut &[u8]) -> Result<Self, PersistError> {
        if input.remaining() < 1 + 8 {
            return Err(PersistError::Truncated);
        }
        let tag = input.get_u8();
        let len = input.get_u64_le() as usize;
        if input.remaining() < len {
            return Err(PersistError::Truncated);
        }
        let payload = &input[..len];
        let backend = match tag {
            TAG_DENSE => TreeBackend::Dense(BloomSampleTree::from_bytes(payload)?),
            TAG_PRUNED => TreeBackend::Pruned(PrunedBloomSampleTree::from_bytes(payload)?),
            _ => return Err(PersistError::Corrupt("unknown tree backend tag")),
        };
        input.advance(len);
        Ok(backend)
    }
}

impl SampleTree for TreeBackend {
    fn root(&self) -> Option<NodeId> {
        match self {
            TreeBackend::Dense(t) => t.root(),
            TreeBackend::Pruned(t) => t.root(),
        }
    }

    fn is_leaf(&self, node: NodeId) -> bool {
        match self {
            TreeBackend::Dense(t) => t.is_leaf(node),
            TreeBackend::Pruned(t) => t.is_leaf(node),
        }
    }

    fn children(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        match self {
            TreeBackend::Dense(t) => t.children(node),
            TreeBackend::Pruned(t) => t.children(node),
        }
    }

    fn filter(&self, node: NodeId) -> &BloomFilter {
        match self {
            TreeBackend::Dense(t) => t.filter(node),
            TreeBackend::Pruned(t) => t.filter(node),
        }
    }

    fn range(&self, node: NodeId) -> Range<u64> {
        match self {
            TreeBackend::Dense(t) => t.range(node),
            TreeBackend::Pruned(t) => t.range(node),
        }
    }

    fn leaf_candidates(&self, node: NodeId) -> LeafCandidates<'_> {
        match self {
            TreeBackend::Dense(t) => t.leaf_candidates(node),
            TreeBackend::Pruned(t) => t.leaf_candidates(node),
        }
    }

    fn hasher(&self) -> &Arc<BloomHasher> {
        match self {
            TreeBackend::Dense(t) => t.hasher(),
            TreeBackend::Pruned(t) => t.hasher(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;

    fn plan() -> TreePlan {
        TreePlan {
            namespace: 4096,
            m: 4096,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 31,
            depth: 4,
            leaf_capacity: 256,
            target_accuracy: 0.9,
        }
    }

    #[test]
    fn delegation_matches_the_wrapped_tree() {
        let p = plan();
        let dense = TreeBackend::Dense(BloomSampleTree::build(&p));
        assert!(!dense.is_pruned());
        assert_eq!(dense.node_count(), (1 << 5) - 1);
        assert_eq!(dense.occupied_count(), 4096);
        assert_eq!(dense.depth(), 4);
        assert!(dense.as_dense().is_some() && dense.as_pruned().is_none());

        let occ: Vec<u64> = (100..200u64).collect();
        let pruned = TreeBackend::Pruned(PrunedBloomSampleTree::build(&p, &occ));
        assert!(pruned.is_pruned());
        assert_eq!(pruned.occupied_count(), 100);
        assert!(pruned.node_count() < dense.node_count());
        assert!(pruned.as_pruned().is_some() && pruned.as_dense().is_none());
        // Trait navigation works through the enum.
        let root = pruned.root().expect("root");
        assert!(pruned.filter(root).contains(150));
        assert_eq!(pruned.range(root), 0..4096);
    }

    #[test]
    fn tagged_roundtrip_both_backends() {
        let p = plan();
        let occ: Vec<u64> = (0..4096u64).step_by(17).collect();
        for backend in [
            TreeBackend::Dense(BloomSampleTree::build(&p)),
            TreeBackend::Pruned(PrunedBloomSampleTree::build(&p, &occ)),
        ] {
            let mut buf = bytes::BytesMut::new();
            backend.put_bytes(&mut buf);
            let mut slice: &[u8] = &buf;
            let back = TreeBackend::get_bytes(&mut slice).expect("decode");
            assert!(slice.is_empty(), "payload fully consumed");
            assert_eq!(back.is_pruned(), backend.is_pruned());
            assert_eq!(back.node_count(), backend.node_count());
            for i in (0..backend.node_count() as u32).step_by(3) {
                assert_eq!(back.filter(i).bits(), backend.filter(i).bits());
            }
        }
    }

    #[test]
    fn bad_tag_and_truncation_rejected() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(9);
        buf.put_u64_le(0);
        let mut s: &[u8] = &buf;
        assert_eq!(
            TreeBackend::get_bytes(&mut s).unwrap_err(),
            PersistError::Corrupt("unknown tree backend tag")
        );
        let mut short: &[u8] = &[TAG_DENSE];
        assert_eq!(
            TreeBackend::get_bytes(&mut short).unwrap_err(),
            PersistError::Truncated
        );
    }
}
