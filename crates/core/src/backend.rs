//! Backend polymorphism for the facade: one [`TreeBackend`] serves both
//! the dense, complete [`BloomSampleTree`] and the occupancy-aware
//! [`PrunedBloomSampleTree`] through the same `query()`/`query_batch()`
//! surface — and, for the pruned backend, lets the *namespace occupancy
//! itself* evolve behind the shared `Arc`.
//!
//! ## Tree generations
//!
//! The pruned tree supports §5.2 `insert`/`remove`, but those take `&mut`
//! while the facade shares the backend behind an `Arc`. The backend
//! therefore wraps the pruned tree in an `RwLock` and stamps every
//! structural mutation with a monotonically increasing **tree
//! generation** (the occupancy analogue of the store's per-set
//! generations). Read access goes through [`TreeBackend::read`], which
//! returns a [`TreeView`] — a read-guard enum implementing
//! [`SampleTree`] — so the sampling and reconstruction algorithms stay
//! statically dispatched inside each arm, with no vtable in the descent
//! loop. While a view is held, writers block, so the view's generation
//! stamp is stable for the whole operation; open
//! [`crate::query::Query`] handles compare stamps at the top of every
//! operation and re-descend cold after any occupancy change.
//!
//! The dense backend's occupancy is the full namespace by construction
//! and never changes: its generation is the constant 0 and the mutation
//! entry points report [`BstError::ImmutableBackend`].

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bst_bloom::params::TreePlan;
use bytes::{Buf, BufMut};
use parking_lot::RwLock;

use crate::error::BstError;
use crate::persistence::PersistError;
use crate::pruned::PrunedBloomSampleTree;
use crate::tree::{BloomSampleTree, LeafCandidates, NodeId, SampleTree};

/// Snapshot tag for a dense backend.
const TAG_DENSE: u8 = 0;
/// Snapshot tag for a pruned backend.
const TAG_PRUNED: u8 = 1;

/// The mutable half of a pruned backend: the tree behind its lock plus
/// the generation stamp bumped (under the write lock) by every
/// structural mutation.
pub struct PrunedBackend {
    /// The plan, cached outside the lock (it never changes).
    plan: TreePlan,
    /// The shared hash family, cached outside the lock.
    hasher: Arc<BloomHasher>,
    /// Occupancy mutation counter; bumped while the write lock is held,
    /// so a reader holding a [`TreeView`] observes a stable value.
    generation: AtomicU64,
    tree: RwLock<PrunedBloomSampleTree>,
}

/// The tree a [`crate::system::BstSystem`] serves queries from: either the
/// complete tree of Definition 5.1 (static, fully occupied namespaces) or
/// the pruned variant of §5.2 (sparse / dynamic occupancy, mutable
/// through [`Self::insert_occupied`] / [`Self::remove_occupied`]).
pub enum TreeBackend {
    /// The complete [`BloomSampleTree`] over the whole namespace.
    Dense(BloomSampleTree),
    /// The occupancy-aware, lock-wrapped [`PrunedBloomSampleTree`].
    Pruned(PrunedBackend),
}

impl std::fmt::Debug for TreeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeBackend::Dense(t) => write!(f, "{t:?}"),
            TreeBackend::Pruned(p) => write!(
                f,
                "{:?}@gen{}",
                &*p.tree.read(),
                p.generation.load(Ordering::Acquire)
            ),
        }
    }
}

impl TreeBackend {
    /// Wraps a dense tree.
    pub fn dense(tree: BloomSampleTree) -> Self {
        TreeBackend::Dense(tree)
    }

    /// Wraps a pruned tree. The tree generation mirrors the tree's own
    /// mutation [`PrunedBloomSampleTree::version`] exactly (0 for a
    /// freshly built tree; a decoded tree resumes the persisted count),
    /// so generation gaps index directly into the tree's mutation
    /// journal for cache repair and stamps never alias across a reload.
    pub fn pruned(tree: PrunedBloomSampleTree) -> Self {
        TreeBackend::Pruned(PrunedBackend {
            plan: tree.plan().clone(),
            hasher: Arc::clone(tree.hasher()),
            generation: AtomicU64::new(tree.version()),
            tree: RwLock::new(tree),
        })
    }

    /// The plan the backend was built from.
    pub fn plan(&self) -> &TreePlan {
        match self {
            TreeBackend::Dense(t) => t.plan(),
            TreeBackend::Pruned(p) => &p.plan,
        }
    }

    /// Tree depth (leaves at this level; 0 = root-only).
    pub fn depth(&self) -> u32 {
        self.plan().depth
    }

    /// Namespace size `M`.
    pub fn namespace(&self) -> u64 {
        self.plan().namespace
    }

    /// Number of materialised nodes (for a mutated pruned backend this
    /// includes unlinked tombstones still in the arena; snapshots compact
    /// them away).
    pub fn node_count(&self) -> usize {
        match self {
            TreeBackend::Dense(t) => t.node_count(),
            TreeBackend::Pruned(p) => p.tree.read().node_count(),
        }
    }

    /// Heap bytes of all node bit arrays.
    pub fn memory_bytes(&self) -> usize {
        match self {
            TreeBackend::Dense(t) => t.memory_bytes(),
            TreeBackend::Pruned(p) => p.tree.read().memory_bytes(),
        }
    }

    /// Number of occupied namespace ids (the full namespace for a dense
    /// backend).
    pub fn occupied_count(&self) -> u64 {
        match self {
            TreeBackend::Dense(t) => t.namespace(),
            TreeBackend::Pruned(p) => p.tree.read().occupied_count(),
        }
    }

    /// All occupied namespace ids, ascending. For a dense backend this is
    /// the full namespace — `O(M)` memory; intended for pruned backends
    /// and small dense systems.
    pub fn occupied_ids(&self) -> Vec<u64> {
        match self {
            TreeBackend::Dense(t) => (0..t.namespace()).collect(),
            TreeBackend::Pruned(p) => p.tree.read().occupied_ids(),
        }
    }

    /// Whether `id` is an occupied namespace element (exact; always true
    /// inside the namespace for a dense backend).
    pub fn contains_occupied(&self, id: u64) -> bool {
        match self {
            TreeBackend::Dense(t) => id < t.namespace(),
            TreeBackend::Pruned(p) => p.tree.read().contains_occupied(id),
        }
    }

    /// Whether this is the pruned (occupancy-aware) backend.
    pub fn is_pruned(&self) -> bool {
        matches!(self, TreeBackend::Pruned(_))
    }

    /// The shared hash family.
    pub fn hasher(&self) -> &Arc<BloomHasher> {
        match self {
            TreeBackend::Dense(t) => t.hasher(),
            TreeBackend::Pruned(p) => &p.hasher,
        }
    }

    /// Builds a query filter compatible with this backend from a key set.
    pub fn query_filter<I: IntoIterator<Item = u64>>(&self, keys: I) -> BloomFilter {
        BloomFilter::from_keys(Arc::clone(self.hasher()), keys)
    }

    /// The current tree generation: 0 forever for a dense backend, the
    /// occupancy-mutation count for a pruned one. Prefer
    /// [`TreeView::generation`] when a consistent (view, stamp) pair is
    /// needed — this unlocked read may race an in-flight mutation.
    pub fn generation(&self) -> u64 {
        match self {
            TreeBackend::Dense(_) => 0,
            TreeBackend::Pruned(p) => p.generation.load(Ordering::Acquire),
        }
    }

    /// Applies a mutation-journal retention bound (see
    /// [`PrunedBloomSampleTree::set_journal_cap`]). No-op for dense
    /// backends, whose occupancy never mutates.
    pub fn set_journal_cap(&self, cap: usize) {
        if let TreeBackend::Pruned(p) = self {
            p.tree.write().set_journal_cap(cap);
        }
    }

    /// Acquires a read view for sampling/reconstruction. Occupancy
    /// writers block until the view is dropped, so everything computed
    /// through one view is consistent with its [`TreeView::generation`].
    pub fn read(&self) -> TreeView<'_> {
        match self {
            TreeBackend::Dense(t) => TreeView::Dense(t),
            TreeBackend::Pruned(p) => {
                let guard = p.tree.read();
                let generation = p.generation.load(Ordering::Acquire);
                TreeView::Pruned { guard, generation }
            }
        }
    }

    /// Marks `id` occupied (§5.2 dynamic insertion), extending filters
    /// along its root-to-leaf path and materialising missing nodes. Bumps
    /// the tree generation when the occupancy actually changed — open
    /// [`crate::query::Query`] handles re-descend cold on their next
    /// operation — and returns the resulting generation.
    ///
    /// Fails with [`BstError::ImmutableBackend`] on a dense backend and
    /// [`BstError::KeyOutsideNamespace`] for ids outside `[0, M)`.
    pub fn insert_occupied(&self, id: u64) -> Result<u64, BstError> {
        self.mutate_occupied(id, |tree, id| tree.insert(id))
    }

    /// Removes `id` from the occupied set (the §5.2 evolution run in
    /// reverse), rebuilding path filters exactly and unlinking emptied
    /// subtrees. Bumps the tree generation when the occupancy actually
    /// changed and returns the resulting generation. Same failure modes
    /// as [`Self::insert_occupied`].
    pub fn remove_occupied(&self, id: u64) -> Result<u64, BstError> {
        self.mutate_occupied(id, |tree, id| tree.remove(id))
    }

    fn mutate_occupied(
        &self,
        id: u64,
        op: impl FnOnce(&mut PrunedBloomSampleTree, u64) -> bool,
    ) -> Result<u64, BstError> {
        let p = match self {
            TreeBackend::Dense(_) => return Err(BstError::ImmutableBackend),
            TreeBackend::Pruned(p) => p,
        };
        if id >= p.plan.namespace {
            return Err(BstError::KeyOutsideNamespace(id));
        }
        let mut tree = p.tree.write();
        op(&mut tree, id);
        // Republish the tree's own mutation version (unchanged on a
        // no-op) under the write lock: a reader holding a view can never
        // observe a generation older than the tree it reads, and the
        // generation stays aligned with the mutation journal.
        let generation = tree.version();
        p.generation.store(generation, Ordering::Release);
        Ok(generation)
    }

    /// Recounts every subtree from scratch and compares against the
    /// maintained weights (always true for a dense backend). Test-suite
    /// ground truth — `O(nodes)`.
    pub fn weights_consistent(&self) -> bool {
        match self {
            TreeBackend::Dense(_) => true,
            TreeBackend::Pruned(p) => p.tree.read().verify_weights(),
        }
    }

    /// Serializes the backend as `tag u8 | len u64 | tree bytes`, appended
    /// to `buf` (each tree keeps its own magic/version inside the payload).
    /// The pruned tree persists its generation counter inside its own
    /// payload, so a restored backend continues stamping monotonically.
    pub(crate) fn put_bytes(&self, buf: &mut bytes::BytesMut) {
        let (tag, payload) = match self {
            TreeBackend::Dense(t) => (TAG_DENSE, t.to_bytes()),
            TreeBackend::Pruned(p) => (TAG_PRUNED, p.tree.read().to_bytes()),
        };
        buf.put_u8(tag);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
    }

    /// Decodes a backend serialized with [`Self::put_bytes`], advancing
    /// `input` past the payload.
    pub(crate) fn get_bytes(input: &mut &[u8]) -> Result<Self, PersistError> {
        if input.remaining() < 1 + 8 {
            return Err(PersistError::Truncated);
        }
        let tag = input.get_u8();
        let len = input.get_u64_le() as usize;
        if input.remaining() < len {
            return Err(PersistError::Truncated);
        }
        let payload = &input[..len];
        let backend = match tag {
            TAG_DENSE => TreeBackend::dense(BloomSampleTree::from_bytes(payload)?),
            TAG_PRUNED => TreeBackend::pruned(PrunedBloomSampleTree::from_bytes(payload)?),
            _ => return Err(PersistError::Corrupt("unknown tree backend tag")),
        };
        input.advance(len);
        Ok(backend)
    }
}

/// A read view over a [`TreeBackend`]: the [`SampleTree`] the descent
/// algorithms actually run against. For a pruned backend this holds the
/// read lock, so occupancy writers wait until the view is dropped —
/// acquire it per operation, not per session.
pub enum TreeView<'a> {
    /// A dense backend (no lock needed; the tree is immutable).
    Dense(&'a BloomSampleTree),
    /// A pruned backend's read guard plus the generation it captured.
    Pruned {
        /// The locked tree.
        guard: parking_lot::RwLockReadGuard<'a, PrunedBloomSampleTree>,
        /// Tree generation at acquisition (stable while the guard lives).
        generation: u64,
    },
}

impl TreeView<'_> {
    /// The tree generation this view observes (0 for dense backends).
    pub fn generation(&self) -> u64 {
        match self {
            TreeView::Dense(_) => 0,
            TreeView::Pruned { generation, .. } => *generation,
        }
    }

    /// Repairs a [`crate::sampler::QueryMemo`] last synchronised at tree generation
    /// `since` up to this view's generation by replaying the mutation
    /// journal: each mutated id invalidates cached state along its
    /// root-to-leaf path only (`O(depth)` per mutation). Returns `false`
    /// when the journal no longer reaches back to `since` — the caller
    /// must discard the memo wholesale instead.
    ///
    /// The cached live-leaf weight is **delta-maintained** when
    /// `exact_count` holds (sound `BitOverlap` reconstruction, where the
    /// weight is exactly `|{x occupied : filter(x)}|`): inserting an
    /// occupied id adds `filter.contains(id)`, removing one subtracts
    /// it — O(k) per mutation, no counting walk. Under estimate-
    /// threshold pruning the weight is walk-dependent, so the cache is
    /// dropped and recounted lazily instead.
    ///
    /// The delta is *provably* exact only when the sound walk's
    /// positives-equal-count identity holds, and the one way that
    /// identity can break is a resident occupied id with **degenerate
    /// probes** (fewer than `k` distinct bit positions) that is also a
    /// filter positive — only such an id can sit in a subtree whose
    /// `t∧ < k` prunes it, and only revealing/hiding such an id makes a
    /// mutation's true delta differ from `±filter.contains(id)`. The
    /// tree maintains a census of degenerate-probe residents, so the
    /// fast path simply verifies none of them is a filter positive (the
    /// census is empty in the overwhelmingly common case); otherwise —
    /// and for a degenerate mutated id itself — the cache is dropped
    /// and the next call recounts through the repaired memo.
    pub fn repair_memo(
        &self,
        since: u64,
        memo: &mut crate::sampler::QueryMemo,
        filter: &BloomFilter,
        exact_count: bool,
    ) -> bool {
        match self {
            // Dense generation is constant 0: there is never a gap.
            TreeView::Dense(_) => true,
            TreeView::Pruned { guard, .. } => {
                let Some(mutations) = guard.mutations_since(since) else {
                    return false;
                };
                // Delta exactness precondition (see the method docs): no
                // degenerate-probe resident may be a filter positive.
                // Checked once per sync against the census — which is
                // empty in the common case.
                let deltas_exact = exact_count
                    && memo.cached_count().is_some()
                    && guard.colliding_ids().iter().all(|&c| !filter.contains(c));
                let mut count = memo.cached_count();
                for (id, inserted) in mutations {
                    memo.repair_after_mutation(self, id);
                    count = match count {
                        // An inserted id was not occupied before (so not
                        // counted); a removed id was, and was counted
                        // iff the filter holds it. The mutated id's own
                        // probes are checked directly (a degenerate
                        // removal is not in the post-removal census);
                        // checked arithmetic is belt-and-braces against
                        // wrap.
                        Some(c) if deltas_exact && filter.probes_distinct_bits(id) => {
                            let delta = u64::from(filter.contains(id));
                            if inserted {
                                c.checked_add(delta)
                            } else {
                                c.checked_sub(delta)
                            }
                        }
                        _ => None,
                    };
                }
                memo.cached_count = count;
                true
            }
        }
    }

    /// Journal-replay hook for **external** weight memos — live-leaf
    /// weights cached outside any [`crate::query::Query`] handle, such as
    /// the sharded engine's persistent batch weight cache. Brings an
    /// exact weight computed at tree generation `since` up to this view's
    /// generation by replaying the mutation journal with the O(k) delta
    /// `±filter.contains(id)` per mutation, instead of a counting walk.
    ///
    /// Returns `None` whenever the delta cannot be *proven* exact — the
    /// journal no longer reaches back to `since`, a degenerate-probe
    /// resident is a positive of `filter` (the collision census), a
    /// mutated id itself probes fewer than `k` distinct bits, or the
    /// arithmetic would wrap — in which case the caller must discard the
    /// cached weight and recount. The delta is sound only when the
    /// weight is the exact positives count, i.e. under `BitOverlap`
    /// reconstruction; callers gate on the configuration, as
    /// [`crate::system::BstSystem::repair_live_weight`] does.
    pub fn replay_count(&self, since: u64, filter: &BloomFilter, count: u64) -> Option<u64> {
        match self {
            // Dense generation is constant 0: a zero gap is a no-op and
            // anything else is a caller bug treated as "cannot repair".
            TreeView::Dense(_) => (since == 0).then_some(count),
            TreeView::Pruned { guard, .. } => {
                let mutations = guard.mutations_since(since)?;
                // Same exactness precondition as `repair_memo`: no
                // degenerate-probe resident may be a filter positive.
                if guard.colliding_ids().iter().any(|&c| filter.contains(c)) {
                    return None;
                }
                let mut count = count;
                for (id, inserted) in mutations {
                    if !filter.probes_distinct_bits(id) {
                        return None;
                    }
                    let delta = u64::from(filter.contains(id));
                    count = if inserted {
                        count.checked_add(delta)?
                    } else {
                        count.checked_sub(delta)?
                    };
                }
                Some(count)
            }
        }
    }
}

impl SampleTree for TreeView<'_> {
    fn root(&self) -> Option<NodeId> {
        match self {
            TreeView::Dense(t) => t.root(),
            TreeView::Pruned { guard, .. } => guard.root(),
        }
    }

    fn is_leaf(&self, node: NodeId) -> bool {
        match self {
            TreeView::Dense(t) => t.is_leaf(node),
            TreeView::Pruned { guard, .. } => guard.is_leaf(node),
        }
    }

    fn children(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        match self {
            TreeView::Dense(t) => t.children(node),
            TreeView::Pruned { guard, .. } => guard.children(node),
        }
    }

    fn filter(&self, node: NodeId) -> &BloomFilter {
        match self {
            TreeView::Dense(t) => t.filter(node),
            TreeView::Pruned { guard, .. } => guard.filter(node),
        }
    }

    fn range(&self, node: NodeId) -> Range<u64> {
        match self {
            TreeView::Dense(t) => t.range(node),
            TreeView::Pruned { guard, .. } => guard.range(node),
        }
    }

    fn leaf_candidates(&self, node: NodeId) -> LeafCandidates<'_> {
        match self {
            TreeView::Dense(t) => t.leaf_candidates(node),
            TreeView::Pruned { guard, .. } => guard.leaf_candidates(node),
        }
    }

    fn hasher(&self) -> &Arc<BloomHasher> {
        match self {
            TreeView::Dense(t) => t.hasher(),
            TreeView::Pruned { guard, .. } => guard.hasher(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;

    fn plan() -> TreePlan {
        TreePlan {
            namespace: 4096,
            m: 4096,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 31,
            depth: 4,
            leaf_capacity: 256,
            target_accuracy: 0.9,
        }
    }

    #[test]
    fn delegation_matches_the_wrapped_tree() {
        let p = plan();
        let dense = TreeBackend::dense(BloomSampleTree::build(&p));
        assert!(!dense.is_pruned());
        assert_eq!(dense.node_count(), (1 << 5) - 1);
        assert_eq!(dense.occupied_count(), 4096);
        assert_eq!(dense.depth(), 4);

        let occ: Vec<u64> = (100..200u64).collect();
        let pruned = TreeBackend::pruned(PrunedBloomSampleTree::build(&p, &occ));
        assert!(pruned.is_pruned());
        assert_eq!(pruned.occupied_count(), 100);
        assert!(pruned.node_count() < dense.node_count());
        assert_eq!(pruned.occupied_ids(), occ);
        // Trait navigation works through the view.
        let view = pruned.read();
        let root = view.root().expect("root");
        assert!(view.filter(root).contains(150));
        assert_eq!(view.range(root), 0..4096);
        assert_eq!(view.generation(), 0);
    }

    #[test]
    fn occupancy_mutations_bump_the_tree_generation() {
        let backend = TreeBackend::pruned(PrunedBloomSampleTree::build(&plan(), &[5, 10]));
        assert_eq!(backend.generation(), 0);
        assert_eq!(backend.insert_occupied(99), Ok(1));
        assert!(backend.contains_occupied(99));
        // A no-op insert does not bump.
        assert_eq!(backend.insert_occupied(99), Ok(1));
        assert_eq!(backend.remove_occupied(5), Ok(2));
        assert!(!backend.contains_occupied(5));
        // A no-op removal does not bump either.
        assert_eq!(backend.remove_occupied(5), Ok(2));
        assert_eq!(backend.occupied_count(), 2);
        assert_eq!(backend.read().generation(), 2);
        // Out-of-namespace ids are typed errors, not panics.
        assert_eq!(
            backend.insert_occupied(4096),
            Err(BstError::KeyOutsideNamespace(4096))
        );
    }

    #[test]
    fn dense_backend_is_immutable() {
        let backend = TreeBackend::dense(BloomSampleTree::build(&plan()));
        assert_eq!(backend.insert_occupied(7), Err(BstError::ImmutableBackend));
        assert_eq!(backend.remove_occupied(7), Err(BstError::ImmutableBackend));
        assert_eq!(backend.generation(), 0);
        assert!(backend.contains_occupied(7));
        assert!(!backend.contains_occupied(4096));
    }

    #[test]
    fn tagged_roundtrip_both_backends() {
        let p = plan();
        let occ: Vec<u64> = (0..4096u64).step_by(17).collect();
        for backend in [
            TreeBackend::dense(BloomSampleTree::build(&p)),
            TreeBackend::pruned(PrunedBloomSampleTree::build(&p, &occ)),
        ] {
            let mut buf = bytes::BytesMut::new();
            backend.put_bytes(&mut buf);
            let mut slice: &[u8] = &buf;
            let back = TreeBackend::get_bytes(&mut slice).expect("decode");
            assert!(slice.is_empty(), "payload fully consumed");
            assert_eq!(back.is_pruned(), backend.is_pruned());
            assert_eq!(back.node_count(), backend.node_count());
            let (va, vb) = (back.read(), backend.read());
            for i in (0..backend.node_count() as u32).step_by(3) {
                assert_eq!(va.filter(i).bits(), vb.filter(i).bits());
            }
        }
    }

    #[test]
    fn bad_tag_and_truncation_rejected() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(9);
        buf.put_u64_le(0);
        let mut s: &[u8] = &buf;
        assert_eq!(
            TreeBackend::get_bytes(&mut s).unwrap_err(),
            PersistError::Corrupt("unknown tree backend tag")
        );
        let mut short: &[u8] = &[TAG_DENSE];
        assert_eq!(
            TreeBackend::get_bytes(&mut short).unwrap_err(),
            PersistError::Truncated
        );
    }
}
