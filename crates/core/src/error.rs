//! Typed failure reasons for every fallible sampling/reconstruction
//! operation.
//!
//! The pre-handle facade returned bare `Option<u64>` / `Vec<u64>`, which
//! collapsed four very different situations — "you handed me an empty
//! filter", "pruning proved no element can match", "the rejection budget
//! ran out" and "this filter was built with a different hash family" —
//! into one uninformative `None`. Serving infrastructure needs to route
//! these differently (a client error vs. a retry vs. a config bug), so
//! every fallible operation now returns `Result<_, BstError>`.
//!
//! The store and persistence layers fold into the same taxonomy:
//! looking up a dropped [`crate::store::FilterId`] is
//! [`BstError::UnknownFilterId`], and every snapshot decode failure is
//! [`BstError::Persist`] (via `From<PersistError>`), so the facade
//! exposes exactly one error type.

use crate::persistence::PersistError;
use crate::store::FilterId;

/// Why a sampling or reconstruction operation could not produce a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BstError {
    /// The query filter has no bits set: nothing was ever stored in it.
    EmptyFilter,
    /// The query filter's `(m, k, hash family, seed)` do not match the
    /// tree's, so intersections against tree nodes are meaningless.
    IncompatibleFilter,
    /// The tree has no root (a pruned tree over an empty occupied set).
    EmptyTree,
    /// Tree descent proved that no live leaf exists: every root-to-leaf
    /// path died in pruning or leaf membership scans. Under sound
    /// (`BitOverlap`) liveness with no rejection correction this means the
    /// filter's positive set over the namespace is empty; under
    /// threshold pruning it may also mean the estimates discarded a small
    /// set (the paper's §5.6 caveat).
    NoLiveLeaf,
    /// Rejection-corrected sampling used up its proposal budget without an
    /// accepted (or fallback) sample. The filter may still be non-empty —
    /// retrying with a fresh RNG state or a larger `gamma` can succeed.
    BudgetExhausted {
        /// Proposal walks attempted before giving up.
        attempts: usize,
    },
    /// A configuration value was rejected by
    /// [`crate::system::BstSystemBuilder::try_build`] or the `validate`
    /// methods on the config types (negative or non-finite liveness
    /// threshold, rejection `gamma` below 1, …).
    InvalidConfig(&'static str),
    /// The [`crate::store::FilterId`] names no set in the system's store:
    /// it was never created here, or it has been dropped. Query handles
    /// opened on the id before the drop report this on their next use.
    UnknownFilterId(FilterId),
    /// An occupancy mutation ([`crate::system::BstSystem::insert_occupied`]
    /// / [`crate::system::BstSystem::remove_occupied`]) was attempted on a
    /// dense backend, whose occupancy is the full namespace by
    /// construction and can never change. Build the system with
    /// [`crate::system::BstSystemBuilder::pruned`] for an evolvable
    /// namespace.
    ImmutableBackend,
    /// A key handed to the store lies outside the system's namespace
    /// `[0, M)`. Such a key could never be returned by sampling or
    /// reconstruction (leaf candidates cover the namespace only), so
    /// storing it would be silent data loss; the mutation is rejected
    /// whole instead.
    KeyOutsideNamespace(u64),
    /// Decoding a persisted snapshot (system, tree, or store) failed; the
    /// nested [`PersistError`] names the structural problem.
    Persist(PersistError),
}

impl From<PersistError> for BstError {
    fn from(e: PersistError) -> Self {
        BstError::Persist(e)
    }
}

impl std::fmt::Display for BstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BstError::EmptyFilter => write!(f, "query filter is empty"),
            BstError::IncompatibleFilter => {
                write!(f, "query filter parameters do not match the tree")
            }
            BstError::EmptyTree => write!(f, "tree has no root"),
            BstError::NoLiveLeaf => write!(f, "no live leaf: every descent path died"),
            BstError::BudgetExhausted { attempts } => {
                write!(f, "rejection budget exhausted after {attempts} proposals")
            }
            BstError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            BstError::UnknownFilterId(id) => {
                write!(f, "unknown filter id {id}: never created here, or dropped")
            }
            BstError::ImmutableBackend => {
                write!(
                    f,
                    "dense backend occupancy is immutable; build with .pruned(..) to evolve it"
                )
            }
            BstError::KeyOutsideNamespace(key) => {
                write!(f, "key {key} lies outside the system's namespace")
            }
            BstError::Persist(e) => write!(f, "persisted snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for BstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        assert!(BstError::EmptyFilter.to_string().contains("empty"));
        assert!(BstError::IncompatibleFilter.to_string().contains("match"));
        assert!(BstError::BudgetExhausted { attempts: 96 }
            .to_string()
            .contains("96"));
        assert!(BstError::InvalidConfig("gamma")
            .to_string()
            .contains("gamma"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(BstError::NoLiveLeaf);
    }

    #[test]
    fn persist_errors_fold_into_bst_error() {
        let e: BstError = PersistError::BadMagic.into();
        assert_eq!(e, BstError::Persist(PersistError::BadMagic));
        assert!(e.to_string().contains("magic"));
        fn takes_question_mark() -> Result<(), BstError> {
            Err(PersistError::Truncated)?;
            Ok(())
        }
        assert_eq!(
            takes_question_mark(),
            Err(BstError::Persist(PersistError::Truncated))
        );
    }

    #[test]
    fn unknown_filter_id_names_the_id() {
        let id = FilterId::from_raw(42);
        let e = BstError::UnknownFilterId(id);
        assert!(e.to_string().contains("42"));
    }
}
