//! Runtime calibration of the §5.4 cost model.
//!
//! The leaf-capacity rule `N⊥/log₂N⊥ ≤ icost/mcost` needs the relative
//! cost of a Bloom filter intersection (`icost`, proportional to `m/64`
//! word ANDs) versus a membership query (`mcost`, `k` hash evaluations +
//! probes). Both depend on the machine and the hash family, so we measure
//! them on the spot.

use std::sync::Arc;
use std::time::Instant;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bst_bloom::params::{depth_for, leaf_capacity_for_cost_ratio, leaf_size, TreePlan};

/// Measured per-operation costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Nanoseconds per membership query.
    pub membership_ns: f64,
    /// Nanoseconds per filter intersection (AND + popcount over `m` bits).
    pub intersection_ns: f64,
}

impl CostModel {
    /// The `icost/mcost` ratio feeding the leaf-capacity rule.
    pub fn ratio(&self) -> f64 {
        (self.intersection_ns / self.membership_ns).max(f64::MIN_POSITIVE)
    }

    /// Measures both costs for filters built on `hasher`.
    ///
    /// Builds two half-full filters of the hasher's `m` and times
    /// `and_count` and `contains` over pseudo-random keys. Short and
    /// repeatable rather than statistically rigorous — the rule only needs
    /// the right order of magnitude.
    pub fn measure(hasher: &Arc<BloomHasher>) -> CostModel {
        let m = hasher.m();
        let mut a = BloomFilter::new(Arc::clone(hasher));
        let mut b = BloomFilter::new(Arc::clone(hasher));
        // Fill to a realistic density.
        let inserts = (m / (3 * hasher.k())).max(16) as u64;
        for x in 0..inserts {
            a.insert(x.wrapping_mul(0x9E3779B97F4A7C15) >> 8);
            b.insert(x.wrapping_mul(0xBF58476D1CE4E5B9) >> 8);
        }

        // Membership cost.
        let mem_reps: u64 = 20_000;
        let start = Instant::now();
        let mut acc = 0u64;
        for x in 0..mem_reps {
            acc += a.contains(x.wrapping_mul(0x94D049BB133111EB) >> 9) as u64;
        }
        let membership_ns = start.elapsed().as_nanos() as f64 / mem_reps as f64;
        std::hint::black_box(acc);

        // Intersection cost.
        let int_reps: u64 = (2_000_000_000 / m as u64).clamp(64, 20_000);
        let start = Instant::now();
        let mut acc2 = 0usize;
        for _ in 0..int_reps {
            acc2 = acc2.wrapping_add(a.and_count(&b));
        }
        let intersection_ns = start.elapsed().as_nanos() as f64 / int_reps as f64;
        std::hint::black_box(acc2);

        CostModel {
            membership_ns: membership_ns.max(0.1),
            intersection_ns: intersection_ns.max(0.1),
        }
    }

    /// Rewrites a plan's depth/leaf capacity from this cost model,
    /// implementing the full §5.4 chain (`m` stays as planned).
    pub fn retune_plan(&self, plan: &TreePlan) -> TreePlan {
        let cap = leaf_capacity_for_cost_ratio(self.ratio());
        let depth = depth_for(plan.namespace, cap);
        TreePlan {
            depth,
            leaf_capacity: leaf_size(plan.namespace, depth),
            ..plan.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;

    #[test]
    fn measurement_is_sane() {
        let hasher = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 60_000, 1 << 20, 1));
        let cm = CostModel::measure(&hasher);
        assert!(cm.membership_ns > 0.0);
        assert!(cm.intersection_ns > 0.0);
        // A 60k-bit intersection walks ~940 words; it must cost more than
        // a 3-hash membership probe.
        assert!(
            cm.ratio() > 1.0,
            "intersection should out-cost membership: {cm:?}"
        );
    }

    #[test]
    fn md5_membership_is_slower_than_murmur() {
        let mm = CostModel::measure(&Arc::new(BloomHasher::new(
            HashKind::Murmur3,
            3,
            60_000,
            1 << 20,
            1,
        )));
        let md5 = CostModel::measure(&Arc::new(BloomHasher::new(
            HashKind::Md5,
            3,
            60_000,
            1 << 20,
            1,
        )));
        assert!(
            md5.membership_ns > mm.membership_ns,
            "MD5 {} ns vs Murmur3 {} ns",
            md5.membership_ns,
            mm.membership_ns
        );
    }

    #[test]
    fn retune_preserves_m_and_namespace() {
        let plan = TreePlan {
            namespace: 1_000_000,
            m: 60_870,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 0,
            depth: 9,
            leaf_capacity: 1954,
            target_accuracy: 0.9,
        };
        let cm = CostModel {
            membership_ns: 10.0,
            intersection_ns: 1000.0,
        };
        let tuned = cm.retune_plan(&plan);
        assert_eq!(tuned.m, plan.m);
        assert_eq!(tuned.namespace, plan.namespace);
        assert_eq!(tuned.leaf_capacity, leaf_size(plan.namespace, tuned.depth));
        // ratio 100 -> capacity in [976, 1000) -> depth 10 for M=1e6.
        assert_eq!(tuned.depth, 10);
    }
}
