//! The per-filter query handle: captured filter + amortized descent state,
//! generation-stamped against the mutable store *and* the mutable tree.
//!
//! The paper's framework (§3.2) stores millions of sets as Bloom filters
//! and serves *repeated* sampling/reconstruction requests against each of
//! them from one shared tree. Treating every call as stateless — as the
//! old `BstSystem::sample`/`reconstruct` facade did — rebuilds the same
//! per-query information over and over: every descent re-intersects the
//! query with the same node filters, every leaf visit re-scans the same
//! candidates, and corrected sampling rebuilds its frontier weight cache
//! from scratch each call.
//!
//! [`Query`] fixes the shape: [`crate::system::BstSystem::query`] captures
//! the filter once, and each operation lazily grows a [`QueryMemo`] — the
//! live-node frontier discovered by the first tree descents — so later
//! operations on the same handle turn `O(m/64)`-word Bloom intersections
//! into hash-map hits. The handle holds an `Arc` of the system, so it is
//! `'static`, `Send + Sync`, and can be shared across worker threads or
//! kept in a per-client session cache.
//!
//! ## Mutation safety: two generation stamps
//!
//! Two things can change under an open handle, and each has its own
//! invalidation path:
//!
//! * **The stored set** (handles opened by id via
//!   [`crate::system::BstSystem::query_id`]): `insert_keys`/`remove_keys`
//!   bump the set's generation in the store. A stale handle re-projects
//!   the filter and discards the memo — a cold re-descent.
//! * **The tree's occupancy** (pruned backends):
//!   [`crate::system::BstSystem::insert_occupied`] /
//!   [`crate::system::BstSystem::remove_occupied`] bump the backend's
//!   *tree generation* (see [`crate::backend::TreeBackend`]). A stale
//!   handle replays the tree's bounded mutation journal and **repairs**
//!   its memo along just the mutated root-to-leaf paths (`O(depth)` per
//!   mutation) — the filter itself is still valid, it never depended on
//!   the tree — so occupancy churn costs a path re-evaluation, not a
//!   full cold re-descent. Only when the journal no longer covers the
//!   generation gap is the memo discarded wholesale. Either way the
//!   repaired state is bit-identical to a cold walk's, so
//!   warm-equals-cold holds across occupancy churn. This applies to
//!   *detached* handles too.
//!
//! Every operation acquires the tree view first, then checks both stamps
//! under the state lock, so results are never computed against a
//! superseded set or a reshaped tree; the warm-equals-cold guarantee
//! holds across both mutation paths (`e2e_store.rs`, `e2e_shard.rs`).
//!
//! Caching never changes results: cached values are pure functions of
//! `(tree, filter, config)`, and the walk consumes randomness identically
//! on hits and misses, so a warm handle returns exactly what a cold one
//! would for the same RNG state (`e2e_query_handle.rs` pins this).

use std::ops::Range;

use bst_bloom::filter::BloomFilter;
use parking_lot::Mutex;
use rand::Rng;

use crate::backend::TreeView;
use crate::error::BstError;
use crate::metrics::OpStats;
use crate::reconstruct::BstReconstructor;
use crate::sampler::{BstSampler, QueryMemo};
use crate::store::FilterId;
use crate::system::BstSystem;
use crate::tree::SampleTree;

/// Where a handle's filter came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum QuerySource {
    /// A caller-supplied filter, captured once, never refreshed.
    Detached,
    /// A set registered in the system's store, re-projected whenever the
    /// stored generation moves past the handle's stamp.
    Stored(FilterId),
}

/// The mutable half of a handle: the projected filter, its compatibility
/// verdict, the two generation stamps it was computed at, and the memo —
/// refreshed together so they can never disagree.
struct QueryState {
    filter: BloomFilter,
    compatible: bool,
    /// Store generation of the last projection (0, constant, detached).
    generation: u64,
    /// Tree generation the memo was built against.
    tree_generation: u64,
    memo: QueryMemo,
}

/// A handle binding one query filter to a [`BstSystem`], with cached
/// descent state and accumulated operation accounting.
///
/// Construct with [`BstSystem::query`] (detached filter) or
/// [`BstSystem::query_id`] (store-registered set; mutation-safe via
/// generation stamps). All operations take `&self`; the internal caches
/// are mutex-guarded, so a `Query` can be shared across threads
/// (operations on *one* handle serialize on the cache lock — clone the
/// system and open one handle per worker for parallel serving of the
/// same filter).
pub struct Query {
    system: BstSystem,
    source: QuerySource,
    state: Mutex<QueryState>,
    stats: Mutex<OpStats>,
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        write!(
            f,
            "Query(source={:?}, bits={}, generation={}, tree_generation={}, compatible={}, cached_evals={}, cached_leaves={})",
            self.source,
            state.filter.count_ones(),
            state.generation,
            state.tree_generation,
            state.compatible,
            state.memo.cached_evals(),
            state.memo.cached_leaves()
        )
    }
}

impl Query {
    pub(crate) fn new(system: BstSystem, filter: BloomFilter) -> Self {
        Self::build(system, QuerySource::Detached, filter, 0)
    }

    pub(crate) fn new_stored(
        system: BstSystem,
        id: FilterId,
        filter: BloomFilter,
        generation: u64,
    ) -> Self {
        Self::build(system, QuerySource::Stored(id), filter, generation)
    }

    fn build(system: BstSystem, source: QuerySource, filter: BloomFilter, generation: u64) -> Self {
        let view = system.tree().read();
        let compatible = Self::compatible(&view, &filter);
        let tree_generation = view.generation();
        drop(view);
        Query {
            system,
            source,
            state: Mutex::new(QueryState {
                filter,
                compatible,
                generation,
                tree_generation,
                memo: QueryMemo::new(),
            }),
            stats: Mutex::new(OpStats::new()),
        }
    }

    fn compatible(view: &TreeView<'_>, filter: &BloomFilter) -> bool {
        match view.root() {
            Some(root) => filter.compatible_with(view.filter(root)),
            None => true,
        }
    }

    /// The query filter the handle currently holds (a snapshot clone; for
    /// store-backed handles this is the projection as of the last
    /// refresh).
    pub fn filter(&self) -> BloomFilter {
        self.state.lock().filter.clone()
    }

    /// The store id this handle reads, for handles opened with
    /// [`BstSystem::query_id`]; `None` for detached handles.
    pub fn filter_id(&self) -> Option<FilterId> {
        match self.source {
            QuerySource::Detached => None,
            QuerySource::Stored(id) => Some(id),
        }
    }

    /// The store-generation stamp of the last projection (0 and constant
    /// for detached handles).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// The tree-generation stamp of the handle's cached descent state
    /// (0 and constant on a dense backend).
    pub fn tree_generation(&self) -> u64 {
        self.state.lock().tree_generation
    }

    /// Whether the stored set *or* the tree's occupancy has moved past
    /// this handle's stamps (the next operation will re-descend cold).
    /// Errors if the set was dropped.
    pub fn is_stale(&self) -> Result<bool, BstError> {
        Ok(self.staleness()?.2)
    }

    /// One-shot staleness probe: the handle's `(set generation, tree
    /// generation)` stamps plus whether anything has moved past them,
    /// with a single state-lock acquisition — the hot-path form of
    /// [`Self::generation`] + [`Self::tree_generation`] +
    /// [`Self::is_stale`] (the sharded engine's per-sample weight-cache
    /// check). Errors if the backing set was dropped.
    pub fn staleness(&self) -> Result<(u64, u64, bool), BstError> {
        let (seen_set, seen_tree) = {
            let state = self.state.lock();
            (state.generation, state.tree_generation)
        };
        let set_stale = match self.source {
            QuerySource::Detached => false,
            QuerySource::Stored(id) => self.system.filters().generation(id)? != seen_set,
        };
        let stale = set_stale || self.system.tree().generation() != seen_tree;
        Ok((seen_set, seen_tree, stale))
    }

    /// The system this handle queries (an `Arc` clone away from the one
    /// that created it).
    pub fn system(&self) -> &BstSystem {
        &self.system
    }

    /// Estimated cardinality of the stored set, from the filter alone.
    /// Store-backed handles refresh their projection first, so the
    /// estimate tracks mutations; if the set was dropped (or the filter
    /// is incompatible), the last successful projection is reported.
    pub fn estimated_cardinality(&self) -> f64 {
        let view = self.system.tree().read();
        let mut guard = self.state.lock();
        let _ = self.sync(&mut guard, &view);
        guard.filter.estimate_cardinality()
    }

    /// Operation counts accumulated by every call through this handle.
    /// Cached work performs no filter operations, so a warming handle
    /// shows falling per-call deltas here.
    pub fn stats(&self) -> OpStats {
        *self.stats.lock()
    }

    /// Returns the accumulated stats and resets the counters.
    pub fn take_stats(&self) -> OpStats {
        let mut guard = self.stats.lock();
        let out = *guard;
        guard.reset();
        out
    }

    /// Number of tree nodes whose liveness/descent evaluation is cached.
    pub fn cached_evals(&self) -> usize {
        self.state.lock().memo.cached_evals()
    }

    /// Number of leaves whose match lists are cached.
    pub fn cached_leaves(&self) -> usize {
        self.state.lock().memo.cached_leaves()
    }

    /// Brings `state` up to date with the store (stale set stamp →
    /// re-project filter, reset memo) and the tree (stale tree stamp →
    /// reset memo), then enforces the compatibility guard. Called at the
    /// top of every operation, under the state lock, with the view the
    /// operation will run against — the view holds the tree read lock, so
    /// neither stamp can move between this check and the operation.
    fn sync(&self, state: &mut QueryState, view: &TreeView<'_>) -> Result<(), BstError> {
        // Store staleness first: a re-projection replaces the filter and
        // discards the memo wholesale, which also covers any pending
        // tree-generation gap — running the journal repair before would
        // be work thrown straight away.
        let mut reprojected = false;
        if let QuerySource::Stored(id) = self.source {
            if let Some((filter, generation)) = self
                .system
                .filters()
                .snapshot_if_newer(id, state.generation)?
            {
                state.compatible = Self::compatible(view, &filter);
                state.filter = filter;
                state.generation = generation;
                state.memo = QueryMemo::new();
                state.tree_generation = view.generation();
                reprojected = true;
            }
        }
        if !reprojected && view.generation() != state.tree_generation {
            // The tree's occupancy changed. Replay the mutation journal
            // to repair the memo along just the mutated root-to-leaf
            // paths (O(depth) per mutation) and delta-update the
            // maintained live weight (O(k) per mutation under sound
            // reconstruction); only when the handle is so stale that the
            // journal no longer covers the gap is the memo discarded
            // wholesale. The filter itself is unaffected either way (it
            // never depended on the tree).
            let exact_count =
                self.system.config().reconstruct.liveness == crate::sampler::Liveness::BitOverlap;
            if !view.repair_memo(
                state.tree_generation,
                &mut state.memo,
                &state.filter,
                exact_count,
            ) {
                state.memo = QueryMemo::new();
            }
            state.tree_generation = view.generation();
            state.compatible = Self::compatible(view, &state.filter);
        }
        if state.compatible {
            Ok(())
        } else {
            Err(BstError::IncompatibleFilter)
        }
    }

    /// Emits one tracing span carrying this operation's `OpStats` delta
    /// (the paper's §7.1 units) as attributes. While tracing is
    /// disabled (`span == None`) this is a single branch.
    fn record_span(&self, name: &'static str, span: Option<std::time::Instant>, local: &OpStats) {
        self.system.tracer().record(
            name,
            span,
            &[
                ("intersections", local.intersections),
                ("memberships", local.memberships),
                ("nodes_visited", local.nodes_visited),
                ("backtracks", local.backtracks),
            ],
        );
    }

    /// Draws one near-uniform sample from the stored set.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<u64, BstError> {
        let span = self.system.tracer().start();
        let view = self.system.tree().read();
        let mut guard = self.state.lock();
        self.sync(&mut guard, &view)?;
        let sampler = BstSampler::with_config(&view, self.system.config().sampler);
        let state = &mut *guard;
        let mut local = OpStats::new();
        let out = sampler.try_sample_memo(&state.filter, &mut state.memo, rng, &mut local);
        drop(guard);
        *self.stats.lock() += local;
        self.record_span("bst.core.sample", span, &local);
        out
    }

    /// Draws `r` samples in one tree pass (§5.3). May return fewer than
    /// `r` when descent paths die on false-positive routes.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        r: usize,
        rng: &mut R,
    ) -> Result<Vec<u64>, BstError> {
        let span = self.system.tracer().start();
        let view = self.system.tree().read();
        let mut guard = self.state.lock();
        self.sync(&mut guard, &view)?;
        let sampler = BstSampler::with_config(&view, self.system.config().sampler);
        let state = &mut *guard;
        let mut local = OpStats::new();
        let out = sampler.try_sample_many_memo(&state.filter, r, &mut state.memo, rng, &mut local);
        drop(guard);
        *self.stats.lock() += local;
        self.record_span("bst.core.sample_many", span, &local);
        out
    }

    /// Reconstructs the stored set (`S ∪ S(B)`), sorted ascending.
    pub fn reconstruct(&self) -> Result<Vec<u64>, BstError> {
        let span = self.system.tracer().start();
        let view = self.system.tree().read();
        let mut guard = self.state.lock();
        self.sync(&mut guard, &view)?;
        let recon = BstReconstructor::with_config(&view, self.system.config().reconstruct);
        let state = &mut *guard;
        let mut local = OpStats::new();
        let out = recon.try_reconstruct_memo(&state.filter, &mut state.memo, &mut local);
        drop(guard);
        *self.stats.lock() += local;
        self.record_span("bst.core.reconstruct", span, &local);
        out
    }

    /// The number of elements [`Self::reconstruct`] would return — the
    /// handle's **live-leaf weight**: matching candidates summed over all
    /// live leaves. Exact (the same walk as reconstruction, without
    /// materialising the set) and amortized by the memo, so repeated
    /// calls on a warm handle do no filter work. The sharded engine uses
    /// this to weight shard selection so merged sampling stays uniform.
    pub fn live_weight(&self) -> Result<u64, BstError> {
        self.live_weight_stamped().0
    }

    /// [`Self::live_weight`] plus the `(set generation, tree generation)`
    /// stamps the outcome was computed at, read under the same state lock
    /// as the computation — so a caller caching the weight can key it to
    /// *exactly* the state it reflects, even while other threads operate
    /// on the same handle. On hard errors (dropped set, incompatible
    /// filter) the stamps are the handle's current ones and should not
    /// be used for caching.
    pub fn live_weight_stamped(&self) -> (Result<u64, BstError>, u64, u64) {
        let span = self.system.tracer().start();
        let view = self.system.tree().read();
        let mut guard = self.state.lock();
        let synced = self.sync(&mut guard, &view);
        let (set_gen, tree_gen) = (guard.generation, guard.tree_generation);
        if let Err(e) = synced {
            return (Err(e), set_gen, tree_gen);
        }
        let recon = BstReconstructor::with_config(&view, self.system.config().reconstruct);
        let state = &mut *guard;
        let mut local = OpStats::new();
        let out = recon.try_count_memo(&state.filter, &mut state.memo, &mut local);
        drop(guard);
        *self.stats.lock() += local;
        self.record_span("bst.core.live_weight", span, &local);
        (out, set_gen, tree_gen)
    }

    /// Range-restricted reconstruction: elements of `S ∪ S(B)` inside
    /// `window`, sorted. Subtrees disjoint from the window are never
    /// visited. An empty window yields `Ok(vec![])`.
    pub fn reconstruct_range(&self, window: Range<u64>) -> Result<Vec<u64>, BstError> {
        let span = self.system.tracer().start();
        let view = self.system.tree().read();
        let mut guard = self.state.lock();
        self.sync(&mut guard, &view)?;
        let recon = BstReconstructor::with_config(&view, self.system.config().reconstruct);
        let state = &mut *guard;
        let mut local = OpStats::new();
        let out =
            recon.try_reconstruct_range_memo(&state.filter, window, &mut state.memo, &mut local);
        drop(guard);
        *self.stats.lock() += local;
        self.record_span("bst.core.reconstruct_range", span, &local);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system() -> BstSystem {
        BstSystem::builder(20_000)
            .expected_set_size(200)
            .seed(5)
            .build()
    }

    #[test]
    fn handle_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static>() {}
        assert_traits::<Query>();
    }

    #[test]
    fn repeated_sampling_amortizes_ops() {
        let sys = system();
        let f = sys.store((0..200u64).map(|i| i * 83 % 20_000));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(1);
        q.sample(&mut rng).expect("first sample");
        let cold = q.take_stats();
        for _ in 0..100 {
            q.sample(&mut rng).expect("warm sample");
        }
        let warm = q.take_stats();
        assert!(
            warm.total_ops() < 100 * cold.total_ops(),
            "100 warm samples ({} ops) should amortize vs 100x cold cost ({} ops)",
            warm.total_ops(),
            100 * cold.total_ops()
        );
        assert!(q.cached_evals() > 0);
    }

    #[test]
    fn reconstruct_twice_second_pass_is_free() {
        let sys = system();
        let keys: Vec<u64> = (0..150u64).map(|i| i * 131 % 20_000).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let first = q.reconstruct().expect("reconstruct");
        let ops_first = q.take_stats().total_ops();
        let second = q.reconstruct().expect("reconstruct again");
        let ops_second = q.take_stats().total_ops();
        assert_eq!(first, second);
        assert_eq!(
            ops_second, 0,
            "fully-warm reconstruction re-does no filter work"
        );
        assert!(ops_first > 0);
    }

    #[test]
    fn live_weight_counts_the_reconstruction() {
        let sys = system();
        let keys: Vec<u64> = (0..150u64).map(|i| i * 97 % 20_000).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let rec = q.reconstruct().expect("reconstruct");
        assert_eq!(q.live_weight(), Ok(rec.len() as u64));
        // Warm: counting re-does no filter work.
        q.take_stats();
        assert_eq!(q.live_weight(), Ok(rec.len() as u64));
        assert_eq!(q.take_stats().total_ops(), 0);
    }

    #[test]
    fn incompatible_filter_is_rejected() {
        let sys = system();
        // A filter built with a different seed: same m/k but a different
        // hash family — intersecting it with tree nodes is meaningless.
        let other = BstSystem::builder(20_000)
            .expected_set_size(200)
            .seed(77)
            .build();
        let foreign = other.store([1u64, 2, 3]);
        let q = sys.query(&foreign);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(q.sample(&mut rng), Err(BstError::IncompatibleFilter));
        assert_eq!(q.reconstruct(), Err(BstError::IncompatibleFilter));
        assert_eq!(
            q.sample_many(5, &mut rng),
            Err(BstError::IncompatibleFilter)
        );
        assert_eq!(q.live_weight(), Err(BstError::IncompatibleFilter));
    }

    #[test]
    fn empty_filter_reports_empty() {
        let sys = system();
        let f = sys.store(std::iter::empty());
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(q.sample(&mut rng), Err(BstError::EmptyFilter));
        assert_eq!(q.reconstruct(), Err(BstError::EmptyFilter));
        assert_eq!(q.live_weight(), Err(BstError::EmptyFilter));
    }

    #[test]
    fn range_reconstruction_windows() {
        let sys = system();
        let keys: Vec<u64> = (100..160u64).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let full = q.reconstruct().expect("full");
        let window = q.reconstruct_range(120..140).expect("window");
        let expect: Vec<u64> = full
            .iter()
            .copied()
            .filter(|&x| (120..140).contains(&x))
            .collect();
        assert_eq!(window, expect);
        assert_eq!(q.reconstruct_range(50..50).expect("empty window"), vec![]);
    }

    #[test]
    fn query_ops_emit_spans_with_opstats_attrs() {
        let sys = system();
        let f = sys.store((0..100u64).map(|i| i * 3));
        let ring = std::sync::Arc::new(bst_obs::RingRecorder::new(16));
        sys.set_recorder(Some(ring.clone()));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(9);
        q.sample(&mut rng).expect("sample");
        let delta = q.take_stats();
        let spans = ring.recent();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.name, "bst.core.sample");
        let attr = |k: &str| {
            s.attrs
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .expect("attr present")
        };
        assert_eq!(attr("intersections"), delta.intersections);
        assert_eq!(attr("memberships"), delta.memberships);
        assert_eq!(attr("nodes_visited"), delta.nodes_visited);
        assert_eq!(attr("backtracks"), delta.backtracks);
        q.reconstruct().expect("reconstruct");
        let names: Vec<&str> = ring.recent().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["bst.core.sample", "bst.core.reconstruct"]);
        // Removing the recorder stops emission entirely.
        sys.set_recorder(None);
        q.sample(&mut rng).expect("sample");
        assert_eq!(ring.recorded_total(), 2);
    }

    #[test]
    fn stats_accumulate_across_ops() {
        let sys = system();
        let f = sys.store((0..50u64).map(|i| i * 31));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(q.stats(), OpStats::new());
        q.sample(&mut rng).expect("sample");
        let after_sample = q.stats();
        assert!(after_sample.total_ops() > 0);
        q.reconstruct().expect("reconstruct");
        assert!(q.stats().total_ops() >= after_sample.total_ops());
    }

    #[test]
    fn detached_handles_never_go_stale_on_dense_backends() {
        let sys = system();
        let f = sys.store((0..50u64).map(|i| i * 7));
        let q = sys.query(&f);
        assert_eq!(q.filter_id(), None);
        assert_eq!(q.is_stale(), Ok(false));
        assert_eq!(q.generation(), 0);
        assert_eq!(q.tree_generation(), 0);
    }

    #[test]
    fn detached_handles_track_tree_mutations_on_pruned_backends() {
        let occ: Vec<u64> = (0..20_000u64).step_by(5).collect();
        let sys = BstSystem::builder(20_000)
            .expected_set_size(200)
            .seed(5)
            .pruned(occ.iter().copied())
            .build();
        let keys: Vec<u64> = occ.iter().copied().take(60).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let rec = q.reconstruct().expect("reconstruct");
        assert!(q.cached_leaves() > 0);
        assert_eq!(q.is_stale(), Ok(false));

        // Occupy a namespace id that the filter already stores: the
        // element becomes sampleable, so the handle must re-descend.
        let newcomer = 3; // 3 % 5 != 0, so it was unoccupied
        assert!(!rec.contains(&newcomer));
        let f2 = sys.store(keys.iter().copied().chain([newcomer]));
        let q2 = sys.query(&f2);
        let before = q2.reconstruct().expect("reconstruct");
        assert!(!before.contains(&newcomer), "unoccupied id invisible");

        sys.insert_occupied(newcomer).expect("insert_occupied");
        assert_eq!(q.is_stale(), Ok(true));
        assert_eq!(q2.is_stale(), Ok(true));
        let after = q2.reconstruct().expect("reconstruct after occupy");
        assert!(after.contains(&newcomer), "occupied id now visible");
        assert_eq!(q2.tree_generation(), 1);
        assert_eq!(q2.is_stale(), Ok(false));

        // Removal invalidates again and hides the id.
        sys.remove_occupied(newcomer).expect("remove_occupied");
        let gone = q2.reconstruct().expect("reconstruct after removal");
        assert!(!gone.contains(&newcomer));
        assert_eq!(q2.tree_generation(), 2);
    }

    #[test]
    fn estimated_cardinality_tracks_mutations() {
        let sys = system();
        let id = sys.create(0..50u64).expect("create");
        let q = sys.query_id(id).expect("open");
        let before = q.estimated_cardinality();
        sys.insert_keys(id, 50..500u64).expect("insert");
        let after = q.estimated_cardinality();
        assert!(
            after > 2.0 * before,
            "estimate must refresh with the store: {before} -> {after}"
        );
    }

    #[test]
    fn stored_handle_refreshes_on_mutation() {
        let sys = system();
        let id = sys.create((0..100u64).map(|i| i * 3)).expect("create");
        let q = sys.query_id(id).expect("open");
        assert_eq!(q.filter_id(), Some(id));
        let mut rng = StdRng::seed_from_u64(6);
        q.sample(&mut rng).expect("sample");
        let warm_evals = q.cached_evals();
        assert!(warm_evals > 0);
        assert_eq!(q.is_stale(), Ok(false));

        // Mutate: handle turns stale, next op re-projects + resets memo.
        sys.insert_keys(id, [9_999u64]).expect("insert");
        assert_eq!(q.is_stale(), Ok(true));
        assert_eq!(q.generation(), 0, "stamp moves only on next op");
        q.reconstruct().expect("reconstruct");
        assert_eq!(q.generation(), 1);
        assert_eq!(q.is_stale(), Ok(false));
        let rec = q.reconstruct().expect("reconstruct warm");
        assert!(rec.binary_search(&9_999).is_ok(), "new key visible");

        // Dropping the set turns every later op into UnknownFilterId.
        sys.drop_set(id).expect("drop");
        assert_eq!(q.sample(&mut rng), Err(BstError::UnknownFilterId(id)));
        assert_eq!(q.is_stale(), Err(BstError::UnknownFilterId(id)));
    }
}
