//! The per-filter query handle: captured filter + amortized descent state.
//!
//! The paper's framework (§3.2) stores millions of sets as Bloom filters
//! and serves *repeated* sampling/reconstruction requests against each of
//! them from one shared tree. Treating every call as stateless — as the
//! old `BstSystem::sample`/`reconstruct` facade did — rebuilds the same
//! per-query information over and over: every descent re-intersects the
//! query with the same node filters, every leaf visit re-scans the same
//! candidates, and corrected sampling rebuilds its frontier weight cache
//! from scratch each call.
//!
//! [`Query`] fixes the shape: [`crate::system::BstSystem::query`] captures
//! the filter once, and each operation lazily grows a [`QueryMemo`] — the
//! live-node frontier discovered by the first tree descents — so later
//! operations on the same handle turn `O(m/64)`-word Bloom intersections
//! into hash-map hits. The handle holds an `Arc` of the system, so it is
//! `'static`, `Send + Sync`, and can be shared across worker threads or
//! kept in a per-client session cache.
//!
//! Caching never changes results: cached values are pure functions of
//! `(tree, filter, config)`, and the walk consumes randomness identically
//! on hits and misses, so a warm handle returns exactly what a cold one
//! would for the same RNG state (`e2e_query_handle.rs` pins this).

use std::ops::Range;

use bst_bloom::filter::BloomFilter;
use parking_lot::Mutex;
use rand::Rng;

use crate::error::BstError;
use crate::metrics::OpStats;
use crate::reconstruct::BstReconstructor;
use crate::sampler::{BstSampler, QueryMemo};
use crate::system::BstSystem;
use crate::tree::SampleTree;

/// A handle binding one query filter to a [`BstSystem`], with cached
/// descent state and accumulated operation accounting.
///
/// Construct with [`BstSystem::query`]. All operations take `&self`; the
/// internal caches are mutex-guarded, so a `Query` can be shared across
/// threads (operations on *one* handle serialize on the cache lock —
/// clone the system and open one handle per worker for parallel serving
/// of the same filter).
pub struct Query {
    system: BstSystem,
    filter: BloomFilter,
    compatible: bool,
    memo: Mutex<QueryMemo>,
    stats: Mutex<OpStats>,
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let memo = self.memo.lock();
        write!(
            f,
            "Query(bits={}, compatible={}, cached_evals={}, cached_leaves={})",
            self.filter.count_ones(),
            self.compatible,
            memo.cached_evals(),
            memo.cached_leaves()
        )
    }
}

impl Query {
    pub(crate) fn new(system: BstSystem, filter: BloomFilter) -> Self {
        let compatible = match system.tree().root() {
            Some(root) => filter.compatible_with(system.tree().filter(root)),
            None => true,
        };
        Query {
            system,
            filter,
            compatible,
            memo: Mutex::new(QueryMemo::new()),
            stats: Mutex::new(OpStats::new()),
        }
    }

    /// The captured query filter.
    pub fn filter(&self) -> &BloomFilter {
        &self.filter
    }

    /// The system this handle queries (an `Arc` clone away from the one
    /// that created it).
    pub fn system(&self) -> &BstSystem {
        &self.system
    }

    /// Estimated cardinality of the stored set, from the filter alone.
    pub fn estimated_cardinality(&self) -> f64 {
        self.filter.estimate_cardinality()
    }

    /// Operation counts accumulated by every call through this handle.
    /// Cached work performs no filter operations, so a warming handle
    /// shows falling per-call deltas here.
    pub fn stats(&self) -> OpStats {
        *self.stats.lock()
    }

    /// Returns the accumulated stats and resets the counters.
    pub fn take_stats(&self) -> OpStats {
        let mut guard = self.stats.lock();
        let out = *guard;
        guard.reset();
        out
    }

    /// Number of tree nodes whose liveness/descent evaluation is cached.
    pub fn cached_evals(&self) -> usize {
        self.memo.lock().cached_evals()
    }

    /// Number of leaves whose match lists are cached.
    pub fn cached_leaves(&self) -> usize {
        self.memo.lock().cached_leaves()
    }

    fn guard(&self) -> Result<(), BstError> {
        if self.compatible {
            Ok(())
        } else {
            Err(BstError::IncompatibleFilter)
        }
    }

    /// Draws one near-uniform sample from the stored set.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<u64, BstError> {
        self.guard()?;
        let sampler = BstSampler::with_config(self.system.tree(), self.system.config().sampler);
        let mut memo = self.memo.lock();
        let mut local = OpStats::new();
        let out = sampler.try_sample_memo(&self.filter, &mut memo, rng, &mut local);
        drop(memo);
        *self.stats.lock() += local;
        out
    }

    /// Draws `r` samples in one tree pass (§5.3). May return fewer than
    /// `r` when descent paths die on false-positive routes.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        r: usize,
        rng: &mut R,
    ) -> Result<Vec<u64>, BstError> {
        self.guard()?;
        let sampler = BstSampler::with_config(self.system.tree(), self.system.config().sampler);
        let mut memo = self.memo.lock();
        let mut local = OpStats::new();
        let out = sampler.try_sample_many_memo(&self.filter, r, &mut memo, rng, &mut local);
        drop(memo);
        *self.stats.lock() += local;
        out
    }

    /// Reconstructs the stored set (`S ∪ S(B)`), sorted ascending.
    pub fn reconstruct(&self) -> Result<Vec<u64>, BstError> {
        self.guard()?;
        let recon =
            BstReconstructor::with_config(self.system.tree(), self.system.config().reconstruct);
        let mut memo = self.memo.lock();
        let mut local = OpStats::new();
        let out = recon.try_reconstruct_memo(&self.filter, &mut memo, &mut local);
        drop(memo);
        *self.stats.lock() += local;
        out
    }

    /// Range-restricted reconstruction: elements of `S ∪ S(B)` inside
    /// `window`, sorted. Subtrees disjoint from the window are never
    /// visited. An empty window yields `Ok(vec![])`.
    pub fn reconstruct_range(&self, window: Range<u64>) -> Result<Vec<u64>, BstError> {
        self.guard()?;
        let recon =
            BstReconstructor::with_config(self.system.tree(), self.system.config().reconstruct);
        let mut memo = self.memo.lock();
        let mut local = OpStats::new();
        let out = recon.try_reconstruct_range_memo(&self.filter, window, &mut memo, &mut local);
        drop(memo);
        *self.stats.lock() += local;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system() -> BstSystem {
        BstSystem::builder(20_000)
            .expected_set_size(200)
            .seed(5)
            .build()
    }

    #[test]
    fn handle_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static>() {}
        assert_traits::<Query>();
    }

    #[test]
    fn repeated_sampling_amortizes_ops() {
        let sys = system();
        let f = sys.store((0..200u64).map(|i| i * 83 % 20_000));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(1);
        q.sample(&mut rng).expect("first sample");
        let cold = q.take_stats();
        for _ in 0..100 {
            q.sample(&mut rng).expect("warm sample");
        }
        let warm = q.take_stats();
        assert!(
            warm.total_ops() < 100 * cold.total_ops(),
            "100 warm samples ({} ops) should amortize vs 100x cold cost ({} ops)",
            warm.total_ops(),
            100 * cold.total_ops()
        );
        assert!(q.cached_evals() > 0);
    }

    #[test]
    fn reconstruct_twice_second_pass_is_free() {
        let sys = system();
        let keys: Vec<u64> = (0..150u64).map(|i| i * 131 % 20_000).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let first = q.reconstruct().expect("reconstruct");
        let ops_first = q.take_stats().total_ops();
        let second = q.reconstruct().expect("reconstruct again");
        let ops_second = q.take_stats().total_ops();
        assert_eq!(first, second);
        assert_eq!(
            ops_second, 0,
            "fully-warm reconstruction re-does no filter work"
        );
        assert!(ops_first > 0);
    }

    #[test]
    fn incompatible_filter_is_rejected() {
        let sys = system();
        // A filter built with a different seed: same m/k but a different
        // hash family — intersecting it with tree nodes is meaningless.
        let other = BstSystem::builder(20_000)
            .expected_set_size(200)
            .seed(77)
            .build();
        let foreign = other.store([1u64, 2, 3]);
        let q = sys.query(&foreign);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(q.sample(&mut rng), Err(BstError::IncompatibleFilter));
        assert_eq!(q.reconstruct(), Err(BstError::IncompatibleFilter));
        assert_eq!(
            q.sample_many(5, &mut rng),
            Err(BstError::IncompatibleFilter)
        );
    }

    #[test]
    fn empty_filter_reports_empty() {
        let sys = system();
        let f = sys.store(std::iter::empty());
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(q.sample(&mut rng), Err(BstError::EmptyFilter));
        assert_eq!(q.reconstruct(), Err(BstError::EmptyFilter));
    }

    #[test]
    fn range_reconstruction_windows() {
        let sys = system();
        let keys: Vec<u64> = (100..160u64).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let full = q.reconstruct().expect("full");
        let window = q.reconstruct_range(120..140).expect("window");
        let expect: Vec<u64> = full
            .iter()
            .copied()
            .filter(|&x| (120..140).contains(&x))
            .collect();
        assert_eq!(window, expect);
        assert_eq!(q.reconstruct_range(50..50).expect("empty window"), vec![]);
    }

    #[test]
    fn stats_accumulate_across_ops() {
        let sys = system();
        let f = sys.store((0..50u64).map(|i| i * 31));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(q.stats(), OpStats::new());
        q.sample(&mut rng).expect("sample");
        let after_sample = q.stats();
        assert!(after_sample.total_ops() > 0);
        q.reconstruct().expect("reconstruct");
        assert!(q.stats().total_ops() >= after_sample.total_ops());
    }
}
