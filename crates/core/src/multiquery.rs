//! Batched sampling across many query filters.
//!
//! The framework (§3.2) is a database `D̄` of millions of sets, each a
//! Bloom filter, all sharing the tree's `(m, H)`. One BloomSampleTree
//! serves them all ("this search tree needs to be constructed only once
//! and will be repeatedly used for different query Bloom filters"), and
//! queries are independent, so batch work parallelises trivially across
//! worker threads (crossbeam scoped threads, aggregated stats behind a
//! parking_lot mutex). The facade exposes this as
//! [`crate::system::BstSystem::query_batch`].

use bst_bloom::filter::BloomFilter;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::BstError;
use crate::metrics::OpStats;
use crate::sampler::{BstSampler, SamplerConfig};
use crate::tree::SampleTree;

/// Draws one sample per query filter, in parallel over `threads` workers
/// (0 = one per CPU). Returns per-query results (aligned with `queries`,
/// each carrying its own typed failure reason) plus aggregated operation
/// counts. Deterministic for a fixed `seed` and query order.
pub fn sample_each<T: SampleTree + Sync>(
    tree: &T,
    queries: &[BloomFilter],
    cfg: SamplerConfig,
    seed: u64,
    threads: usize,
) -> (Vec<Result<u64, BstError>>, OpStats) {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if queries.is_empty() {
        return (Vec::new(), OpStats::new());
    }
    let chunk = queries.len().div_ceil(threads);
    let results: Mutex<Vec<Result<u64, BstError>>> =
        Mutex::new(vec![Err(BstError::NoLiveLeaf); queries.len()]);
    let total: Mutex<OpStats> = Mutex::new(OpStats::new());
    crossbeam::scope(|scope| {
        for (w, qchunk) in queries.chunks(chunk).enumerate() {
            let results = &results;
            let total = &total;
            scope.spawn(move |_| {
                let sampler = BstSampler::with_config(tree, cfg);
                let root_filter = tree.root().map(|r| tree.filter(r));
                // Worker-local rng: deterministic per (seed, worker).
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9E3779B9));
                let mut stats = OpStats::new();
                let mut local = Vec::with_capacity(qchunk.len());
                for q in qchunk {
                    // Same guard the single-query handle enforces: a filter
                    // from a different hash family is a config bug, not an
                    // empty set.
                    local.push(match root_filter {
                        Some(rf) if !q.compatible_with(rf) => Err(BstError::IncompatibleFilter),
                        _ => sampler.try_sample(q, &mut rng, &mut stats),
                    });
                }
                let base = w * chunk;
                let mut res = results.lock();
                res[base..base + local.len()].copy_from_slice(&local);
                *total.lock() += stats;
            });
        }
    })
    // bst-lint: allow(L001) — a worker panic must propagate, not be swallowed
    .expect("worker panicked");
    (results.into_inner(), total.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BloomSampleTree;
    use bst_bloom::hash::HashKind;
    use bst_bloom::params::TreePlan;

    fn tree() -> BloomSampleTree {
        BloomSampleTree::build(&TreePlan {
            namespace: 4096,
            m: 1 << 16,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 11,
            depth: 5,
            leaf_capacity: 128,
            target_accuracy: 0.9,
        })
    }

    fn queries(t: &BloomSampleTree, n: usize) -> Vec<BloomFilter> {
        (0..n)
            .map(|i| {
                let base = (i as u64 * 37) % 2000;
                t.query_filter((0..30).map(|j| base + j * 2))
            })
            .collect()
    }

    #[test]
    fn every_query_gets_a_sound_sample() {
        let t = tree();
        let qs = queries(&t, 64);
        let (res, stats) = sample_each(&t, &qs, SamplerConfig::default(), 5, 4);
        assert_eq!(res.len(), 64);
        for (q, r) in qs.iter().zip(&res) {
            let s = r.expect("sample for every non-empty query");
            assert!(q.contains(s));
        }
        assert!(stats.memberships > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads() {
        let t = tree();
        let qs = queries(&t, 32);
        let (a, _) = sample_each(&t, &qs, SamplerConfig::default(), 9, 4);
        let (b, _) = sample_each(&t, &qs, SamplerConfig::default(), 9, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_matches_result_count() {
        let t = tree();
        let qs = queries(&t, 10);
        let (res, _) = sample_each(&t, &qs, SamplerConfig::default(), 1, 1);
        assert_eq!(res.iter().filter(|r| r.is_ok()).count(), 10);
    }

    #[test]
    fn empty_filters_carry_typed_errors() {
        let t = tree();
        let mut qs = queries(&t, 4);
        qs.insert(2, t.query_filter(std::iter::empty()));
        let (res, _) = sample_each(&t, &qs, SamplerConfig::default(), 3, 2);
        assert_eq!(res.len(), 5);
        assert_eq!(res[2], Err(BstError::EmptyFilter));
        for (i, r) in res.iter().enumerate() {
            if i != 2 {
                assert!(r.is_ok(), "query {i} should sample");
            }
        }
    }

    #[test]
    fn incompatible_filters_carry_typed_errors() {
        let t = tree();
        let mut qs = queries(&t, 3);
        // Same (m, k) but a different hash-family seed: meaningless to
        // intersect against this tree.
        let foreign = BloomFilter::with_params(HashKind::Murmur3, 3, 1 << 16, 4096, 999);
        qs.push(foreign);
        let (res, _) = sample_each(&t, &qs, SamplerConfig::default(), 3, 2);
        assert_eq!(res[3], Err(BstError::IncompatibleFilter));
        for r in &res[..3] {
            assert!(r.is_ok());
        }
    }

    #[test]
    fn empty_batch() {
        let t = tree();
        let (res, stats) = sample_each(&t, &[], SamplerConfig::default(), 0, 0);
        assert!(res.is_empty());
        assert_eq!(stats, OpStats::new());
    }
}
