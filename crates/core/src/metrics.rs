//! Operation accounting.
//!
//! The paper's headline evaluation metric (§7.1) is "the number of
//! intersections and set membership operations" — Figures 3, 4 and 8–10 are
//! entirely in these units. Every sampling/reconstruction entry point takes
//! an [`OpStats`] and increments it as it works.

use std::ops::AddAssign;

/// Counters for the operations the paper reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Bloom filter intersections (one per child-filter `AND`+estimate).
    pub intersections: u64,
    /// Set-membership queries fired at a Bloom filter.
    pub memberships: u64,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Failed descents that forced trying the sibling (false-positive
    /// paths, Figure 2).
    pub backtracks: u64,
}

impl OpStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Total of the paper's two headline counters.
    pub fn total_ops(&self) -> u64 {
        self.intersections + self.memberships
    }
}

impl AddAssign for OpStats {
    fn add_assign(&mut self, rhs: OpStats) {
        self.intersections += rhs.intersections;
        self.memberships += rhs.memberships;
        self.nodes_visited += rhs.nodes_visited;
        self.backtracks += rhs.backtracks;
    }
}

impl std::fmt::Display for OpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "intersections={} memberships={} nodes={} backtracks={}",
            self.intersections, self.memberships, self.nodes_visited, self.backtracks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = OpStats {
            intersections: 1,
            memberships: 2,
            nodes_visited: 3,
            backtracks: 0,
        };
        let b = OpStats {
            intersections: 10,
            memberships: 20,
            nodes_visited: 30,
            backtracks: 1,
        };
        a += b;
        assert_eq!(a.intersections, 11);
        assert_eq!(a.memberships, 22);
        assert_eq!(a.nodes_visited, 33);
        assert_eq!(a.backtracks, 1);
        assert_eq!(a.total_ops(), 33);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = OpStats {
            intersections: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, OpStats::new());
    }

    #[test]
    fn display_is_readable() {
        let s = OpStats {
            intersections: 1,
            memberships: 2,
            nodes_visited: 3,
            backtracks: 4,
        };
        assert_eq!(
            s.to_string(),
            "intersections=1 memberships=2 nodes=3 backtracks=4"
        );
    }
}
