//! Tree persistence: compact binary save/load for
//! [`crate::tree::BloomSampleTree`], [`crate::pruned::PrunedBloomSampleTree`]
//! and whole-system snapshots.
//!
//! The framework builds the tree once and reuses it "repeatedly for
//! different query Bloom filters" (§5); persisting it turns the multi-
//! second construction at large `M` into a single mmap-friendly read.
//! Hash families are *not* serialised bit by bit — they rebuild
//! deterministically from the plan, exactly like the filter codec.
//!
//! Layouts (little-endian):
//!
//! ```text
//! complete: "BSTC" v1 | plan | node words × node_count
//! pruned:   "BSTP" v1 | plan | node_count u32 | root u32(MAX=none)
//!           | version u64 (mutation counter, resumed on decode)
//!           | per node: start u64, end u64, level u32, left u32, right u32,
//!             occupied_len u32, occupied ids…, filter words
//! system:   "BSTS" v1 | sampler cfg | reconstruct cfg | journal_cap u32
//!           | backend tag u8 | backend len u64 | backend bytes
//!           | store next_id u64 | set count u32
//!           | per set: id u64, generation u64, len u64, counting bytes
//! plan:     namespace u64 | m u64 | k u16 | kind u8 | seed u64
//!           | depth u32 | leaf_capacity u64 | target_accuracy f64
//! cfg tags: liveness 0=BitOverlap 1=EstimateThreshold(+f64)
//!           | ratio 0=MeanCorrectedBits 1=AndCardinality 2=Papapetrou
//!           | correction 0=None 1=Rejection(+f64) 2=RejectionAuto
//! ```

use bst_bloom::hash::HashKind;
use bst_bloom::params::TreePlan;
use bytes::{Buf, BufMut, BytesMut};

use crate::reconstruct::ReconstructConfig;
use crate::sampler::{Correction, Liveness, RatioEstimator, SamplerConfig};

/// Errors from decoding a persisted tree, store, or system snapshot.
///
/// Folded into the facade's single error type as
/// [`crate::error::BstError::Persist`], so `system.from_bytes(..)?` composes with
/// every other fallible facade call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// Input ended before the declared structure.
    Truncated,
    /// Magic bytes did not match the expected tree type.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown hash-kind tag.
    BadKind(u8),
    /// Structure is internally inconsistent (counts, ranges, links).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "input truncated"),
            PersistError::BadMagic => write!(f, "bad magic bytes"),
            PersistError::BadVersion(v) => write!(f, "unsupported version {v}"),
            PersistError::BadKind(k) => write!(f, "unknown hash kind {k}"),
            PersistError::Corrupt(what) => write!(f, "corrupt structure: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Snapshot format version shared by every structure in this module (and
/// by the `bst-shard` sharded-system snapshot, which embeds whole-system
/// payloads).
pub const VERSION: u8 = 1;

pub(crate) fn put_plan(buf: &mut BytesMut, plan: &TreePlan) {
    buf.put_u64_le(plan.namespace);
    buf.put_u64_le(plan.m as u64);
    buf.put_u16_le(plan.k as u16);
    buf.put_u8(match plan.kind {
        HashKind::Simple => 0,
        HashKind::Murmur3 => 1,
        HashKind::Md5 => 2,
        HashKind::DeltaBlocked => 3,
    });
    buf.put_u64_le(plan.seed);
    buf.put_u32_le(plan.depth);
    buf.put_u64_le(plan.leaf_capacity);
    buf.put_f64_le(plan.target_accuracy);
}

pub(crate) fn get_plan(input: &mut &[u8]) -> Result<TreePlan, PersistError> {
    if input.remaining() < 8 + 8 + 2 + 1 + 8 + 4 + 8 + 8 {
        return Err(PersistError::Truncated);
    }
    let namespace = input.get_u64_le();
    let m = input.get_u64_le() as usize;
    let k = input.get_u16_le() as usize;
    let kind = match input.get_u8() {
        0 => HashKind::Simple,
        1 => HashKind::Murmur3,
        2 => HashKind::Md5,
        3 => HashKind::DeltaBlocked,
        other => return Err(PersistError::BadKind(other)),
    };
    let seed = input.get_u64_le();
    let depth = input.get_u32_le();
    let leaf_capacity = input.get_u64_le();
    let target_accuracy = input.get_f64_le();
    if kind == HashKind::DeltaBlocked && m < bst_bloom::MIN_BLOCKED_BITS {
        return Err(PersistError::Corrupt("blocked plan with m below one block"));
    }
    Ok(TreePlan {
        namespace,
        m,
        k,
        kind,
        seed,
        depth,
        leaf_capacity,
        target_accuracy,
    })
}

fn put_liveness(buf: &mut BytesMut, liveness: Liveness) {
    match liveness {
        Liveness::BitOverlap => buf.put_u8(0),
        Liveness::EstimateThreshold(tau) => {
            buf.put_u8(1);
            buf.put_f64_le(tau);
        }
    }
}

fn get_liveness(input: &mut &[u8]) -> Result<Liveness, PersistError> {
    if input.remaining() < 1 {
        return Err(PersistError::Truncated);
    }
    match input.get_u8() {
        0 => Ok(Liveness::BitOverlap),
        1 => {
            if input.remaining() < 8 {
                return Err(PersistError::Truncated);
            }
            Ok(Liveness::EstimateThreshold(input.get_f64_le()))
        }
        _ => Err(PersistError::Corrupt("unknown liveness tag")),
    }
}

pub(crate) fn put_sampler_config(buf: &mut BytesMut, cfg: &SamplerConfig) {
    put_liveness(buf, cfg.liveness);
    buf.put_u8(match cfg.ratio {
        RatioEstimator::MeanCorrectedBits => 0,
        RatioEstimator::AndCardinality => 1,
        RatioEstimator::Papapetrou => 2,
    });
    buf.put_u8(cfg.carry_intersection as u8);
    buf.put_u8(cfg.proportional_descent as u8);
    match cfg.correction {
        Correction::None => buf.put_u8(0),
        Correction::Rejection { gamma } => {
            buf.put_u8(1);
            buf.put_f64_le(gamma);
        }
        Correction::RejectionAuto => buf.put_u8(2),
    }
}

pub(crate) fn get_sampler_config(input: &mut &[u8]) -> Result<SamplerConfig, PersistError> {
    let liveness = get_liveness(input)?;
    if input.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let ratio = match input.get_u8() {
        0 => RatioEstimator::MeanCorrectedBits,
        1 => RatioEstimator::AndCardinality,
        2 => RatioEstimator::Papapetrou,
        _ => return Err(PersistError::Corrupt("unknown ratio estimator tag")),
    };
    let carry_intersection = input.get_u8() != 0;
    let proportional_descent = input.get_u8() != 0;
    let correction = match input.get_u8() {
        0 => Correction::None,
        1 => {
            if input.remaining() < 8 {
                return Err(PersistError::Truncated);
            }
            Correction::Rejection {
                gamma: input.get_f64_le(),
            }
        }
        2 => Correction::RejectionAuto,
        _ => return Err(PersistError::Corrupt("unknown correction tag")),
    };
    Ok(SamplerConfig {
        liveness,
        ratio,
        carry_intersection,
        proportional_descent,
        correction,
    })
}

pub(crate) fn put_reconstruct_config(buf: &mut BytesMut, cfg: &ReconstructConfig) {
    put_liveness(buf, cfg.liveness);
    buf.put_u8(cfg.carry_intersection as u8);
}

pub(crate) fn get_reconstruct_config(input: &mut &[u8]) -> Result<ReconstructConfig, PersistError> {
    let liveness = get_liveness(input)?;
    if input.remaining() < 1 {
        return Err(PersistError::Truncated);
    }
    Ok(ReconstructConfig {
        liveness,
        carry_intersection: input.get_u8() != 0,
    })
}

pub(crate) fn put_words(buf: &mut BytesMut, words: &[u64]) {
    for &w in words {
        buf.put_u64_le(w);
    }
}

pub(crate) fn get_words(input: &mut &[u8], count: usize) -> Result<Vec<u64>, PersistError> {
    if input.remaining() < count * 8 {
        return Err(PersistError::Truncated);
    }
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        words.push(input.get_u64_le());
    }
    Ok(words)
}

/// Consumes and validates a 4-byte magic plus the [`VERSION`] byte,
/// advancing `input` past them. Public so layered codecs (the sharded
/// system snapshot) frame their own payloads consistently.
pub fn check_header(input: &mut &[u8], magic: &[u8; 4]) -> Result<(), PersistError> {
    if input.remaining() < 5 {
        return Err(PersistError::Truncated);
    }
    let mut got = [0u8; 4];
    input.copy_to_slice(&mut got);
    if &got != magic {
        return Err(PersistError::BadMagic);
    }
    let version = input.get_u8();
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    Ok(())
}

/// The decoded header of a sharded-system snapshot: how the namespace is
/// partitioned and how sharded filter ids map onto per-shard store ids.
///
/// Written by `bst-shard`'s `ShardedBstSystem::to_bytes` between the
/// snapshot header and the per-shard system payloads; the layout is
/// `shard_count u32 | boundaries (shard_count+1)×u64 | next_id u64 |
/// entry_count u32 | per entry: id u64, shard_count×u64 per-shard ids`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Shard boundaries: `shards+1` ascending values, first 0, last `M`;
    /// shard `s` owns `[boundaries[s], boundaries[s+1])`.
    pub boundaries: Vec<u64>,
    /// Next sharded filter id to allocate.
    pub next_id: u64,
    /// `(sharded id, per-shard store ids)` pairs, ascending by id, one
    /// per-shard id per shard.
    pub entries: Vec<(u64, Vec<u64>)>,
}

/// Serializes a [`ShardManifest`], appended to `buf`. Entries are written
/// in the order given; callers sort by id for byte-determinism.
pub fn put_shard_manifest(buf: &mut BytesMut, manifest: &ShardManifest) {
    let shards = manifest.boundaries.len().saturating_sub(1);
    buf.put_u32_le(shards as u32);
    for &b in &manifest.boundaries {
        buf.put_u64_le(b);
    }
    buf.put_u64_le(manifest.next_id);
    buf.put_u32_le(manifest.entries.len() as u32);
    for (id, per_shard) in &manifest.entries {
        debug_assert_eq!(per_shard.len(), shards, "one store id per shard");
        buf.put_u64_le(*id);
        for &raw in per_shard {
            buf.put_u64_le(raw);
        }
    }
}

/// Decodes a manifest serialized with [`put_shard_manifest`], advancing
/// `input`, and validates its structural invariants: at least one shard,
/// boundaries starting at 0 and strictly increasing, entries strictly
/// ascending by id below `next_id`, one per-shard id per shard.
pub fn get_shard_manifest(input: &mut &[u8]) -> Result<ShardManifest, PersistError> {
    if input.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    let shards = input.get_u32_le() as usize;
    if shards == 0 {
        return Err(PersistError::Corrupt("manifest has zero shards"));
    }
    if input.remaining() < (shards + 1) * 8 {
        return Err(PersistError::Truncated);
    }
    let mut boundaries = Vec::with_capacity(shards + 1);
    for _ in 0..=shards {
        boundaries.push(input.get_u64_le());
    }
    if boundaries[0] != 0 || boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return Err(PersistError::Corrupt(
            "shard boundaries not ascending from 0",
        ));
    }
    if input.remaining() < 8 + 4 {
        return Err(PersistError::Truncated);
    }
    let next_id = input.get_u64_le();
    let count = input.get_u32_le() as usize;
    let mut entries = Vec::with_capacity(count.min(input.remaining() / ((shards + 1) * 8)));
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        if input.remaining() < (shards + 1) * 8 {
            return Err(PersistError::Truncated);
        }
        let id = input.get_u64_le();
        if id >= next_id {
            return Err(PersistError::Corrupt("manifest id beyond next_id"));
        }
        if prev.is_some_and(|p| p >= id) {
            return Err(PersistError::Corrupt("manifest ids not strictly ascending"));
        }
        prev = Some(id);
        let mut per_shard = Vec::with_capacity(shards);
        for _ in 0..shards {
            per_shard.push(input.get_u64_le());
        }
        entries.push((id, per_shard));
    }
    Ok(ShardManifest {
        boundaries,
        next_id,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_roundtrip() {
        let plan = TreePlan {
            namespace: 1 << 30,
            m: 123_456,
            k: 5,
            kind: HashKind::Md5,
            seed: 0xDEAD_BEEF,
            depth: 12,
            leaf_capacity: 262_144,
            target_accuracy: 0.87,
        };
        let mut buf = BytesMut::new();
        put_plan(&mut buf, &plan);
        let mut slice: &[u8] = &buf;
        let back = get_plan(&mut slice).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn truncated_plan_fails() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(7);
        let mut slice: &[u8] = &buf;
        assert_eq!(get_plan(&mut slice).unwrap_err(), PersistError::Truncated);
    }

    #[test]
    fn config_roundtrips_every_variant() {
        for liveness in [Liveness::BitOverlap, Liveness::EstimateThreshold(2.5)] {
            for ratio in [
                RatioEstimator::MeanCorrectedBits,
                RatioEstimator::AndCardinality,
                RatioEstimator::Papapetrou,
            ] {
                for correction in [
                    Correction::None,
                    Correction::Rejection { gamma: 7.0 },
                    Correction::RejectionAuto,
                ] {
                    let cfg = SamplerConfig {
                        liveness,
                        ratio,
                        carry_intersection: true,
                        proportional_descent: false,
                        correction,
                    };
                    let mut buf = BytesMut::new();
                    put_sampler_config(&mut buf, &cfg);
                    let mut s: &[u8] = &buf;
                    assert_eq!(get_sampler_config(&mut s).unwrap(), cfg);
                    assert!(s.is_empty());
                }
            }
            let rcfg = ReconstructConfig {
                liveness,
                carry_intersection: false,
            };
            let mut buf = BytesMut::new();
            put_reconstruct_config(&mut buf, &rcfg);
            let mut s: &[u8] = &buf;
            assert_eq!(get_reconstruct_config(&mut s).unwrap(), rcfg);
        }
    }

    #[test]
    fn truncated_config_fails() {
        let mut s: &[u8] = &[1u8]; // EstimateThreshold tag with no f64
        assert_eq!(get_liveness(&mut s).unwrap_err(), PersistError::Truncated);
        let mut s2: &[u8] = &[9u8];
        assert_eq!(
            get_liveness(&mut s2).unwrap_err(),
            PersistError::Corrupt("unknown liveness tag")
        );
    }

    #[test]
    fn shard_manifest_roundtrip_and_validation() {
        let manifest = ShardManifest {
            boundaries: vec![0, 250, 500, 1000],
            next_id: 5,
            entries: vec![(0, vec![0, 0, 0]), (2, vec![1, 1, 1]), (4, vec![2, 2, 2])],
        };
        let mut buf = BytesMut::new();
        put_shard_manifest(&mut buf, &manifest);
        let mut s: &[u8] = &buf;
        assert_eq!(get_shard_manifest(&mut s).unwrap(), manifest);
        assert!(s.is_empty());

        // Truncation anywhere fails typed.
        for cut in [1, 8, 20, buf.len() - 4] {
            let mut short: &[u8] = &buf[..cut];
            assert_eq!(
                get_shard_manifest(&mut short).unwrap_err(),
                PersistError::Truncated,
                "cut at {cut}"
            );
        }

        // Non-ascending boundaries are corrupt.
        let bad = ShardManifest {
            boundaries: vec![0, 500, 500],
            next_id: 0,
            entries: vec![],
        };
        let mut buf = BytesMut::new();
        put_shard_manifest(&mut buf, &bad);
        let mut s: &[u8] = &buf;
        assert!(matches!(
            get_shard_manifest(&mut s).unwrap_err(),
            PersistError::Corrupt(_)
        ));

        // Ids at or past next_id are corrupt.
        let bad = ShardManifest {
            boundaries: vec![0, 1000],
            next_id: 1,
            entries: vec![(1, vec![0])],
        };
        let mut buf = BytesMut::new();
        put_shard_manifest(&mut buf, &bad);
        let mut s: &[u8] = &buf;
        assert!(matches!(
            get_shard_manifest(&mut s).unwrap_err(),
            PersistError::Corrupt(_)
        ));
    }

    #[test]
    fn header_checks() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"BSTC");
        buf.put_u8(VERSION);
        let mut s: &[u8] = &buf;
        assert!(check_header(&mut s, b"BSTC").is_ok());
        let mut s2: &[u8] = &buf;
        assert_eq!(
            check_header(&mut s2, b"BSTP").unwrap_err(),
            PersistError::BadMagic
        );
    }
}
