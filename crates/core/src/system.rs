//! High-level facade: one shared, immutable BloomSampleTree behind an
//! `Arc`, plus the unified configuration — the API a downstream user
//! starts from.
//!
//! The paper's framework (§3.2) is asymmetric: *one* tree serves millions
//! of query filters, concurrently. [`BstSystem`] is therefore a cheap
//! `Clone` handle (`Arc` bump) that is `Send + Sync`, so worker threads
//! each hold their own handle to the same tree. Per-filter work goes
//! through [`BstSystem::query`], which returns a [`Query`] handle that
//! caches descent state so repeated operations on the same filter
//! amortize the tree-intersection work.
//!
//! ```
//! use bst_core::system::BstSystem;
//!
//! // Namespace of 100k ids, 90% target sampling accuracy.
//! let system = BstSystem::builder(100_000).accuracy(0.9).build();
//! let filter = system.store((0..500u64).map(|i| i * 7));
//! let query = system.query(&filter);
//! let mut rng = rand::thread_rng();
//! let sample = query.sample(&mut rng).unwrap();
//! assert!(filter.contains(sample));
//! ```

use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::HashKind;
use bst_bloom::params::{self, TreePlan};
use rand::Rng;

use crate::costmodel::CostModel;
use crate::error::BstError;
use crate::metrics::OpStats;
use crate::multiquery;
use crate::query::Query;
use crate::reconstruct::{BstReconstructor, ReconstructConfig};
use crate::sampler::{BstSampler, SamplerConfig};
use crate::tree::{BloomSampleTree, SampleTree};

/// Unified behaviour configuration for a [`BstSystem`]: the sampling and
/// reconstruction knobs in one place, set once at build time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BstConfig {
    /// Sampling behaviour (liveness rule, ratio estimator, correction).
    pub sampler: SamplerConfig,
    /// Reconstruction behaviour (pruning discipline).
    pub reconstruct: ReconstructConfig,
}

impl BstConfig {
    /// Both algorithms exactly as the paper describes them (§5.3, §5.6):
    /// threshold pruning and Papapetrou estimates. Use for reproducing
    /// the paper's operation counts.
    pub fn paper() -> Self {
        BstConfig {
            sampler: SamplerConfig::paper(),
            reconstruct: ReconstructConfig::paper(),
        }
    }

    /// Sound defaults plus auto-tuned rejection correction: provably
    /// near-uniform samples at the cost of ~γ walks per sample.
    pub fn corrected() -> Self {
        BstConfig {
            sampler: SamplerConfig::corrected(),
            ..Self::default()
        }
    }

    /// Replaces the sampling configuration.
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// Replaces the reconstruction configuration.
    pub fn with_reconstruct(mut self, reconstruct: ReconstructConfig) -> Self {
        self.reconstruct = reconstruct;
        self
    }

    /// Checks both algorithm configurations, naming the broken invariant.
    pub fn validate(&self) -> Result<(), BstError> {
        self.sampler.validate()?;
        self.reconstruct.validate()
    }
}

/// Builder for a [`BstSystem`].
pub struct BstSystemBuilder {
    namespace: u64,
    accuracy: f64,
    expected_set_size: u64,
    k: usize,
    kind: HashKind,
    seed: u64,
    cfg: BstConfig,
    depth_override: Option<u32>,
    measure_costs: bool,
    threads: usize,
}

impl BstSystemBuilder {
    fn new(namespace: u64) -> Self {
        BstSystemBuilder {
            namespace,
            accuracy: 0.9,
            expected_set_size: 1000,
            k: params::DEFAULT_K,
            kind: HashKind::Murmur3,
            seed: 0,
            cfg: BstConfig::default(),
            depth_override: None,
            measure_costs: false,
            threads: 0,
        }
    }

    /// Target sampling accuracy in `(0, 1]` (drives the filter size `m`).
    pub fn accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Typical stored-set size the accuracy target refers to.
    pub fn expected_set_size(mut self, n: u64) -> Self {
        self.expected_set_size = n;
        self
    }

    /// Number of hash functions (paper default: 3).
    pub fn hash_count(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Hash family (paper default configurations use Simple/Murmur3/MD5).
    pub fn hash_kind(mut self, kind: HashKind) -> Self {
        self.kind = kind;
        self
    }

    /// Seed for the shared hash family.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full behaviour configuration in one call.
    pub fn config(mut self, cfg: BstConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sampling behaviour (liveness rule, ratio estimator, correction).
    pub fn sampler(mut self, cfg: SamplerConfig) -> Self {
        self.cfg.sampler = cfg;
        self
    }

    /// Reconstruction behaviour (pruning discipline).
    pub fn reconstructor(mut self, cfg: ReconstructConfig) -> Self {
        self.cfg.reconstruct = cfg;
        self
    }

    /// Pins the tree depth instead of deriving it from the cost model.
    pub fn depth(mut self, depth: u32) -> Self {
        self.depth_override = Some(depth);
        self
    }

    /// Measures `icost/mcost` on this machine to choose `M⊥` (otherwise a
    /// representative default ratio is used).
    pub fn measure_costs(mut self, yes: bool) -> Self {
        self.measure_costs = yes;
        self
    }

    /// Threads for tree construction (0 = all CPUs).
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves the plan and constructs the tree.
    ///
    /// # Panics
    /// Panics on an invalid configuration; [`Self::try_build`] returns the
    /// typed error instead.
    pub fn build(self) -> BstSystem {
        match self.try_build() {
            Ok(system) => system,
            Err(e) => panic!("invalid BstSystem configuration: {e}"),
        }
    }

    /// [`Self::build`], reporting configuration problems as
    /// [`BstError::InvalidConfig`] instead of panicking.
    pub fn try_build(self) -> Result<BstSystem, BstError> {
        self.cfg.validate()?;
        let mut plan = TreePlan::for_accuracy(
            self.namespace,
            self.expected_set_size,
            self.accuracy,
            self.k,
            self.kind,
            self.seed,
            128.0,
        );
        if self.measure_costs {
            let hasher = std::sync::Arc::new(plan.build_hasher());
            plan = CostModel::measure(&hasher).retune_plan(&plan);
        }
        if let Some(d) = self.depth_override {
            plan.depth = d;
            plan.leaf_capacity = params::leaf_size(self.namespace, d);
        }
        let tree = BloomSampleTree::build_with_threads(&plan, self.threads);
        Ok(BstSystem {
            shared: Arc::new(SystemShared {
                tree,
                cfg: self.cfg,
            }),
        })
    }
}

/// The tree and configuration every handle points at.
pub(crate) struct SystemShared {
    pub(crate) tree: BloomSampleTree,
    pub(crate) cfg: BstConfig,
}

/// A ready-to-use sampling/reconstruction system over one namespace.
///
/// Cloning is an `Arc` bump: all clones share one tree, and the handle is
/// `Send + Sync`, so a server can hand one clone to each worker thread.
/// Per-filter operations go through [`Self::query`].
#[derive(Clone)]
pub struct BstSystem {
    shared: Arc<SystemShared>,
}

impl std::fmt::Debug for BstSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BstSystem({:?}, handles={})",
            self.shared.tree,
            Arc::strong_count(&self.shared)
        )
    }
}

impl BstSystem {
    /// Starts building a system over `[0, namespace)`.
    pub fn builder(namespace: u64) -> BstSystemBuilder {
        BstSystemBuilder::new(namespace)
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BloomSampleTree {
        &self.shared.tree
    }

    /// The full behaviour configuration.
    pub fn config(&self) -> BstConfig {
        self.shared.cfg
    }

    /// The sampler configuration.
    pub fn sampler_config(&self) -> SamplerConfig {
        self.shared.cfg.sampler
    }

    /// Stores a key set as a query Bloom filter compatible with the tree.
    pub fn store<I: IntoIterator<Item = u64>>(&self, keys: I) -> BloomFilter {
        self.shared.tree.query_filter(keys)
    }

    /// Opens a [`Query`] handle on `filter`: the filter is captured once
    /// and descent state (node liveness, descent weights, leaf matches,
    /// the corrected sampler's frontier cache) accumulates across
    /// operations, so repeated sampling or reconstruction of the same
    /// filter skips already-evaluated tree intersections.
    pub fn query(&self, filter: &BloomFilter) -> Query {
        Query::new(self.clone(), filter.clone())
    }

    /// [`Self::query`] taking ownership of the filter (no clone).
    pub fn query_owned(&self, filter: BloomFilter) -> Query {
        Query::new(self.clone(), filter)
    }

    /// Draws one sample per query filter, in parallel over `threads`
    /// worker threads (0 = one per CPU). Results align with `filters`;
    /// each entry carries its own typed failure reason. Deterministic for
    /// a fixed `seed`, thread count and filter order.
    pub fn query_batch(
        &self,
        filters: &[BloomFilter],
        seed: u64,
        threads: usize,
    ) -> (Vec<Result<u64, BstError>>, OpStats) {
        multiquery::sample_each(self.tree(), filters, self.shared.cfg.sampler, seed, threads)
    }

    /// Draws one near-uniform sample from the set stored in `filter`.
    #[deprecated(since = "0.2.0", note = "use `BstSystem::query(&filter).sample(rng)`")]
    pub fn sample<R: Rng + ?Sized>(&self, filter: &BloomFilter, rng: &mut R) -> Option<u64> {
        let mut stats = OpStats::new();
        BstSampler::with_config(self.tree(), self.shared.cfg.sampler)
            .sample(filter, rng, &mut stats)
    }

    /// `sample` with operation accounting.
    #[deprecated(
        since = "0.2.0",
        note = "use `BstSystem::query(&filter)` and read `Query::stats()`"
    )]
    pub fn sample_counted<R: Rng + ?Sized>(
        &self,
        filter: &BloomFilter,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Option<u64> {
        BstSampler::with_config(self.tree(), self.shared.cfg.sampler).sample(filter, rng, stats)
    }

    /// Draws `r` samples in one tree pass (§5.3).
    #[deprecated(
        since = "0.2.0",
        note = "use `BstSystem::query(&filter).sample_many(r, rng)`"
    )]
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        filter: &BloomFilter,
        r: usize,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut stats = OpStats::new();
        BstSampler::with_config(self.tree(), self.shared.cfg.sampler)
            .sample_many(filter, r, rng, &mut stats)
    }

    /// Reconstructs the set stored in `filter` (`S ∪ S(B)`), sorted.
    #[deprecated(
        since = "0.2.0",
        note = "use `BstSystem::query(&filter).reconstruct()`"
    )]
    pub fn reconstruct(&self, filter: &BloomFilter) -> Vec<u64> {
        let mut stats = OpStats::new();
        BstReconstructor::with_config(self.tree(), self.shared.cfg.reconstruct)
            .reconstruct(filter, &mut stats)
    }

    /// `reconstruct` with operation accounting.
    #[deprecated(
        since = "0.2.0",
        note = "use `BstSystem::query(&filter)` and read `Query::stats()`"
    )]
    pub fn reconstruct_counted(&self, filter: &BloomFilter, stats: &mut OpStats) -> Vec<u64> {
        BstReconstructor::with_config(self.tree(), self.shared.cfg.reconstruct)
            .reconstruct(filter, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_defaults_produce_working_system() {
        let sys = BstSystem::builder(50_000).build();
        let keys: Vec<u64> = (0..200u64).map(|i| i * 11).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(1);
        let s = q.sample(&mut rng).expect("sample");
        assert!(f.contains(s));
        let rec = q.reconstruct().expect("reconstruct");
        for k in &keys {
            assert!(rec.binary_search(k).is_ok());
        }
    }

    #[test]
    fn accuracy_touches_filter_size() {
        let lo = BstSystem::builder(100_000).accuracy(0.5).build();
        let hi = BstSystem::builder(100_000).accuracy(0.99).build();
        assert!(hi.tree().plan().m > lo.tree().plan().m);
    }

    #[test]
    fn depth_override_respected() {
        let sys = BstSystem::builder(10_000).depth(3).build();
        assert_eq!(sys.tree().depth(), 3);
        assert_eq!(sys.tree().node_count(), 15);
    }

    #[test]
    fn hash_kind_flows_through() {
        let sys = BstSystem::builder(10_000)
            .hash_kind(HashKind::Simple)
            .build();
        assert!(sys.tree().hasher().is_invertible());
    }

    #[test]
    fn system_is_cheap_to_clone_and_threadsafe() {
        fn assert_traits<T: Clone + Send + Sync + 'static>() {}
        assert_traits::<BstSystem>();
        let sys = BstSystem::builder(10_000).build();
        let clone = sys.clone();
        // Clones share the identical tree allocation.
        assert!(std::ptr::eq(sys.tree(), clone.tree()));
    }

    #[test]
    fn unified_config_reaches_both_algorithms() {
        let sys = BstSystem::builder(10_000)
            .config(BstConfig::paper())
            .build();
        assert_eq!(sys.config().sampler, SamplerConfig::paper());
        assert_eq!(sys.config().reconstruct, ReconstructConfig::paper());
        // Partial setters keep the rest of the config intact.
        let sys2 = BstSystem::builder(10_000)
            .sampler(SamplerConfig::corrected())
            .build();
        assert_eq!(sys2.config().sampler, SamplerConfig::corrected());
        assert_eq!(sys2.config().reconstruct, ReconstructConfig::default());
    }

    #[test]
    fn try_build_rejects_invalid_configs() {
        use crate::sampler::Correction;
        let bad_gamma = BstConfig::default().with_sampler(SamplerConfig {
            correction: Correction::Rejection { gamma: 0.5 },
            ..SamplerConfig::default()
        });
        assert!(matches!(
            BstSystem::builder(10_000).config(bad_gamma).try_build(),
            Err(crate::error::BstError::InvalidConfig(_))
        ));
        let bad_tau = BstConfig::default().with_sampler(SamplerConfig {
            liveness: crate::sampler::Liveness::EstimateThreshold(-1.0),
            ..SamplerConfig::default()
        });
        assert!(matches!(
            BstSystem::builder(10_000).config(bad_tau).try_build(),
            Err(crate::error::BstError::InvalidConfig(_))
        ));
        assert!(BstSystem::builder(10_000).try_build().is_ok());
    }

    #[test]
    fn sample_many_works_via_query_handle() {
        let sys = BstSystem::builder(10_000).build();
        let f = sys.store((0..100u64).map(|i| i * 3));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = q.sample_many(50, &mut rng).expect("sample_many");
        assert_eq!(samples.len(), 50);
        for s in samples {
            assert!(f.contains(s));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let sys = BstSystem::builder(10_000).build();
        let keys: Vec<u64> = (0..100u64).map(|i| i * 7).collect();
        let f = sys.store(keys.iter().copied());
        let mut rng = StdRng::seed_from_u64(3);
        let s = sys.sample(&f, &mut rng).expect("sample");
        assert!(f.contains(s));
        let rec = sys.reconstruct(&f);
        for k in &keys {
            assert!(rec.binary_search(k).is_ok());
        }
        let many = sys.sample_many(&f, 10, &mut rng);
        assert_eq!(many.len(), 10);
    }

    #[test]
    fn query_batch_serves_many_filters() {
        let sys = BstSystem::builder(20_000).build();
        let filters: Vec<_> = (0..12)
            .map(|i| sys.store((0..40u64).map(|j| (i * 997 + j * 13) % 20_000)))
            .collect();
        let (results, stats) = sys.query_batch(&filters, 5, 3);
        assert_eq!(results.len(), filters.len());
        for (f, r) in filters.iter().zip(&results) {
            let s = r.expect("sample for non-empty filter");
            assert!(f.contains(s));
        }
        assert!(stats.total_ops() > 0);
    }
}
