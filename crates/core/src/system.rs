//! High-level facade: one object owning the tree, its sampler settings and
//! the shared hash family — the API a downstream user starts from.
//!
//! ```
//! use bst_core::system::BstSystem;
//!
//! // Namespace of 100k ids, 90% target sampling accuracy.
//! let system = BstSystem::builder(100_000).accuracy(0.9).build();
//! let filter = system.store((0..500u64).map(|i| i * 7));
//! let mut rng = rand::thread_rng();
//! let sample = system.sample(&filter, &mut rng).unwrap();
//! assert!(filter.contains(sample));
//! ```

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::HashKind;
use bst_bloom::params::{self, TreePlan};
use rand::Rng;

use crate::costmodel::CostModel;
use crate::metrics::OpStats;
use crate::reconstruct::{BstReconstructor, ReconstructConfig};
use crate::sampler::{BstSampler, SamplerConfig};
use crate::tree::{BloomSampleTree, SampleTree};

/// Builder for a [`BstSystem`].
pub struct BstSystemBuilder {
    namespace: u64,
    accuracy: f64,
    expected_set_size: u64,
    k: usize,
    kind: HashKind,
    seed: u64,
    sampler_cfg: SamplerConfig,
    reconstruct_cfg: ReconstructConfig,
    depth_override: Option<u32>,
    measure_costs: bool,
    threads: usize,
}

impl BstSystemBuilder {
    fn new(namespace: u64) -> Self {
        BstSystemBuilder {
            namespace,
            accuracy: 0.9,
            expected_set_size: 1000,
            k: params::DEFAULT_K,
            kind: HashKind::Murmur3,
            seed: 0,
            sampler_cfg: SamplerConfig::default(),
            reconstruct_cfg: ReconstructConfig::default(),
            depth_override: None,
            measure_costs: false,
            threads: 0,
        }
    }

    /// Target sampling accuracy in `(0, 1]` (drives the filter size `m`).
    pub fn accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Typical stored-set size the accuracy target refers to.
    pub fn expected_set_size(mut self, n: u64) -> Self {
        self.expected_set_size = n;
        self
    }

    /// Number of hash functions (paper default: 3).
    pub fn hash_count(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Hash family (paper default configurations use Simple/Murmur3/MD5).
    pub fn hash_kind(mut self, kind: HashKind) -> Self {
        self.kind = kind;
        self
    }

    /// Seed for the shared hash family.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sampling behaviour (liveness rule, ratio estimator, correction).
    pub fn sampler(mut self, cfg: SamplerConfig) -> Self {
        self.sampler_cfg = cfg;
        self
    }

    /// Reconstruction behaviour (pruning discipline).
    pub fn reconstructor(mut self, cfg: ReconstructConfig) -> Self {
        self.reconstruct_cfg = cfg;
        self
    }

    /// Pins the tree depth instead of deriving it from the cost model.
    pub fn depth(mut self, depth: u32) -> Self {
        self.depth_override = Some(depth);
        self
    }

    /// Measures `icost/mcost` on this machine to choose `M⊥` (otherwise a
    /// representative default ratio is used).
    pub fn measure_costs(mut self, yes: bool) -> Self {
        self.measure_costs = yes;
        self
    }

    /// Threads for tree construction (0 = all CPUs).
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves the plan and constructs the tree.
    pub fn build(self) -> BstSystem {
        let mut plan = TreePlan::for_accuracy(
            self.namespace,
            self.expected_set_size,
            self.accuracy,
            self.k,
            self.kind,
            self.seed,
            128.0,
        );
        if self.measure_costs {
            let hasher = std::sync::Arc::new(plan.build_hasher());
            plan = CostModel::measure(&hasher).retune_plan(&plan);
        }
        if let Some(d) = self.depth_override {
            plan.depth = d;
            plan.leaf_capacity = params::leaf_size(self.namespace, d);
        }
        let tree = BloomSampleTree::build_with_threads(&plan, self.threads);
        BstSystem {
            tree,
            cfg: self.sampler_cfg,
            rcfg: self.reconstruct_cfg,
        }
    }
}

/// A ready-to-use sampling/reconstruction system over one namespace.
pub struct BstSystem {
    tree: BloomSampleTree,
    cfg: SamplerConfig,
    rcfg: ReconstructConfig,
}

impl BstSystem {
    /// Starts building a system over `[0, namespace)`.
    pub fn builder(namespace: u64) -> BstSystemBuilder {
        BstSystemBuilder::new(namespace)
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BloomSampleTree {
        &self.tree
    }

    /// The sampler configuration.
    pub fn sampler_config(&self) -> SamplerConfig {
        self.cfg
    }

    /// Stores a key set as a query Bloom filter compatible with the tree.
    pub fn store<I: IntoIterator<Item = u64>>(&self, keys: I) -> BloomFilter {
        self.tree.query_filter(keys)
    }

    /// Draws one near-uniform sample from the set stored in `filter`.
    pub fn sample<R: Rng + ?Sized>(&self, filter: &BloomFilter, rng: &mut R) -> Option<u64> {
        let mut stats = OpStats::new();
        self.sample_counted(filter, rng, &mut stats)
    }

    /// [`Self::sample`] with operation accounting.
    pub fn sample_counted<R: Rng + ?Sized>(
        &self,
        filter: &BloomFilter,
        rng: &mut R,
        stats: &mut OpStats,
    ) -> Option<u64> {
        BstSampler::with_config(&self.tree, self.cfg).sample(filter, rng, stats)
    }

    /// Draws `r` samples in one tree pass (§5.3).
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        filter: &BloomFilter,
        r: usize,
        rng: &mut R,
    ) -> Vec<u64> {
        let mut stats = OpStats::new();
        BstSampler::with_config(&self.tree, self.cfg).sample_many(filter, r, rng, &mut stats)
    }

    /// Reconstructs the set stored in `filter` (`S ∪ S(B)`), sorted.
    pub fn reconstruct(&self, filter: &BloomFilter) -> Vec<u64> {
        let mut stats = OpStats::new();
        self.reconstruct_counted(filter, &mut stats)
    }

    /// [`Self::reconstruct`] with operation accounting.
    pub fn reconstruct_counted(&self, filter: &BloomFilter, stats: &mut OpStats) -> Vec<u64> {
        BstReconstructor::with_config(&self.tree, self.rcfg).reconstruct(filter, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_defaults_produce_working_system() {
        let sys = BstSystem::builder(50_000).build();
        let keys: Vec<u64> = (0..200u64).map(|i| i * 11).collect();
        let f = sys.store(keys.iter().copied());
        let mut rng = StdRng::seed_from_u64(1);
        let s = sys.sample(&f, &mut rng).expect("sample");
        assert!(f.contains(s));
        let rec = sys.reconstruct(&f);
        for k in &keys {
            assert!(rec.binary_search(k).is_ok());
        }
    }

    #[test]
    fn accuracy_touches_filter_size() {
        let lo = BstSystem::builder(100_000).accuracy(0.5).build();
        let hi = BstSystem::builder(100_000).accuracy(0.99).build();
        assert!(hi.tree().plan().m > lo.tree().plan().m);
    }

    #[test]
    fn depth_override_respected() {
        let sys = BstSystem::builder(10_000).depth(3).build();
        assert_eq!(sys.tree().depth(), 3);
        assert_eq!(sys.tree().node_count(), 15);
    }

    #[test]
    fn hash_kind_flows_through() {
        let sys = BstSystem::builder(10_000).hash_kind(HashKind::Simple).build();
        assert!(sys.tree().hasher().is_invertible());
    }

    #[test]
    fn sample_many_works_via_facade() {
        let sys = BstSystem::builder(10_000).build();
        let f = sys.store((0..100u64).map(|i| i * 3));
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sys.sample_many(&f, 50, &mut rng);
        assert_eq!(samples.len(), 50);
        for s in samples {
            assert!(f.contains(s));
        }
    }
}
