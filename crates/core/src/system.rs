//! High-level facade: one shared tree backend (dense or pruned) plus the
//! mutable filter store `D̄` behind an `Arc`, with the unified
//! configuration — the API a downstream user starts from.
//!
//! The paper's framework (§3.2) is asymmetric: *one* tree serves a
//! database of millions of stored sets, concurrently. [`BstSystem`] is
//! therefore a cheap `Clone` handle (`Arc` bump) that is `Send + Sync`,
//! so worker threads each hold their own handle to the same tree and
//! store. Sets registered with the system ([`BstSystem::create`]) live in
//! a [`BstStore`] as counting filters — they support `insert_keys` *and*
//! `remove_keys` — and are queried by stable [`FilterId`] through
//! [`BstSystem::query_id`], which returns a generation-stamped [`Query`]
//! handle: mutations invalidate the handle's cached descent state, never
//! its correctness.
//!
//! ```
//! use bst_core::system::BstSystem;
//!
//! // Namespace of 100k ids, 90% target sampling accuracy.
//! let system = BstSystem::builder(100_000).accuracy(0.9).build();
//!
//! // Register a mutable set; it is addressed by id from now on.
//! let community = system.create((0..500u64).map(|i| i * 7)).unwrap();
//! let query = system.query_id(community).unwrap();
//! let mut rng = rand::thread_rng();
//! // Samples come from the set's positives (stored keys ∪ false positives).
//! let member = query.sample(&mut rng).unwrap();
//! assert!(system.get(community).unwrap().contains(member));
//!
//! // Members churn; the open handle sees the new state on its next call.
//! system.insert_keys(community, [99_999u64]).unwrap();
//! system.remove_keys(community, [0u64]).unwrap();
//! let rebuilt = query.reconstruct().unwrap();
//! assert!(rebuilt.binary_search(&99_999).is_ok());
//!
//! // The whole system — plan, tree, store, config — snapshots to bytes.
//! let restored = BstSystem::from_bytes(&system.to_bytes()).unwrap();
//! assert_eq!(restored.query_id(community).unwrap().reconstruct().unwrap(), rebuilt);
//! ```

use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::HashKind;
use bst_bloom::params::{self, TreePlan};
use bst_obs::Tracer;
use bytes::{BufMut, BytesMut};

use crate::backend::TreeBackend;
use crate::costmodel::CostModel;
use crate::error::BstError;
use crate::metrics::OpStats;
use crate::multiquery;
use crate::persistence::{self, PersistError};
use crate::pruned::PrunedBloomSampleTree;
use crate::query::Query;
use crate::reconstruct::{BstReconstructor, ReconstructConfig};
use crate::sampler::{Liveness, QueryMemo, SamplerConfig};
use crate::store::{BstStore, FilterId};
use crate::tree::BloomSampleTree;
use crate::tree::SampleTree;

/// Magic bytes of a whole-system snapshot.
const SYSTEM_MAGIC: &[u8; 4] = b"BSTS";

/// Unified behaviour configuration for a [`BstSystem`]: the sampling and
/// reconstruction knobs in one place, set once at build time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BstConfig {
    /// Sampling behaviour (liveness rule, ratio estimator, correction).
    pub sampler: SamplerConfig,
    /// Reconstruction behaviour (pruning discipline).
    pub reconstruct: ReconstructConfig,
    /// Mutation-journal retention bound for pruned backends (must be
    /// ≥ 1): how many occupancy mutations stay replayable for warm
    /// cache repair before readers fall back to a full reset. Raise it
    /// when checkpoints (WAL compaction) are spaced far apart and warm
    /// handles sync rarely; the default is
    /// [`crate::pruned::DEFAULT_JOURNAL_CAP`].
    pub journal_cap: usize,
}

impl Default for BstConfig {
    fn default() -> Self {
        BstConfig {
            sampler: SamplerConfig::default(),
            reconstruct: ReconstructConfig::default(),
            journal_cap: crate::pruned::DEFAULT_JOURNAL_CAP,
        }
    }
}

impl BstConfig {
    /// Both algorithms exactly as the paper describes them (§5.3, §5.6):
    /// threshold pruning and Papapetrou estimates. Use for reproducing
    /// the paper's operation counts.
    pub fn paper() -> Self {
        BstConfig {
            sampler: SamplerConfig::paper(),
            reconstruct: ReconstructConfig::paper(),
            ..Self::default()
        }
    }

    /// Sound defaults plus auto-tuned rejection correction: provably
    /// near-uniform samples at the cost of ~γ walks per sample.
    pub fn corrected() -> Self {
        BstConfig {
            sampler: SamplerConfig::corrected(),
            ..Self::default()
        }
    }

    /// Replaces the sampling configuration.
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// Replaces the reconstruction configuration.
    pub fn with_reconstruct(mut self, reconstruct: ReconstructConfig) -> Self {
        self.reconstruct = reconstruct;
        self
    }

    /// Replaces the mutation-journal retention bound.
    pub fn with_journal_cap(mut self, cap: usize) -> Self {
        self.journal_cap = cap;
        self
    }

    /// Checks both algorithm configurations, naming the broken invariant.
    pub fn validate(&self) -> Result<(), BstError> {
        self.sampler.validate()?;
        self.reconstruct.validate()?;
        if self.journal_cap == 0 {
            return Err(BstError::InvalidConfig("journal cap must be >= 1"));
        }
        Ok(())
    }
}

/// Builder for a [`BstSystem`].
pub struct BstSystemBuilder {
    namespace: u64,
    accuracy: f64,
    expected_set_size: u64,
    k: usize,
    kind: HashKind,
    seed: u64,
    cfg: BstConfig,
    depth_override: Option<u32>,
    measure_costs: bool,
    threads: usize,
    occupied: Option<Vec<u64>>,
}

impl BstSystemBuilder {
    fn new(namespace: u64) -> Self {
        BstSystemBuilder {
            namespace,
            accuracy: 0.9,
            expected_set_size: 1000,
            k: params::DEFAULT_K,
            kind: HashKind::Murmur3,
            seed: 0,
            cfg: BstConfig::default(),
            depth_override: None,
            measure_costs: false,
            threads: 0,
            occupied: None,
        }
    }

    /// Target sampling accuracy in `(0, 1]` (drives the filter size `m`).
    pub fn accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Typical stored-set size the accuracy target refers to.
    pub fn expected_set_size(mut self, n: u64) -> Self {
        self.expected_set_size = n;
        self
    }

    /// Number of hash functions (paper default: 3).
    pub fn hash_count(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Hash family (paper default configurations use Simple/Murmur3/MD5).
    pub fn hash_kind(mut self, kind: HashKind) -> Self {
        self.kind = kind;
        self
    }

    /// Seed for the shared hash family.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full behaviour configuration in one call.
    pub fn config(mut self, cfg: BstConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sampling behaviour (liveness rule, ratio estimator, correction).
    pub fn sampler(mut self, cfg: SamplerConfig) -> Self {
        self.cfg.sampler = cfg;
        self
    }

    /// Reconstruction behaviour (pruning discipline).
    pub fn reconstructor(mut self, cfg: ReconstructConfig) -> Self {
        self.cfg.reconstruct = cfg;
        self
    }

    /// Mutation-journal retention bound (pruned backends; must be ≥ 1).
    pub fn journal_cap(mut self, cap: usize) -> Self {
        self.cfg.journal_cap = cap;
        self
    }

    /// Pins the tree depth instead of deriving it from the cost model.
    pub fn depth(mut self, depth: u32) -> Self {
        self.depth_override = Some(depth);
        self
    }

    /// Measures `icost/mcost` on this machine to choose `M⊥` (otherwise a
    /// representative default ratio is used).
    pub fn measure_costs(mut self, yes: bool) -> Self {
        self.measure_costs = yes;
        self
    }

    /// Threads for tree construction (0 = all CPUs).
    pub fn build_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Serve from a [`PrunedBloomSampleTree`] (§5.2) materialised only
    /// over `occupied` namespace ids, instead of the dense complete tree.
    /// Ids may arrive in any order and with duplicates; out-of-namespace
    /// ids are reported by [`Self::try_build`] as
    /// [`BstError::InvalidConfig`].
    pub fn pruned<I: IntoIterator<Item = u64>>(mut self, occupied: I) -> Self {
        self.occupied = Some(occupied.into_iter().collect());
        self
    }

    /// Resolves the plan and constructs the tree.
    ///
    /// # Panics
    /// Panics on an invalid configuration; [`Self::try_build`] returns the
    /// typed error instead.
    pub fn build(self) -> BstSystem {
        match self.try_build() {
            Ok(system) => system,
            // bst-lint: allow(L001) — documented `# Panics` contract; try_build is the fallible API
            Err(e) => panic!("invalid BstSystem configuration: {e}"),
        }
    }

    /// [`Self::build`], reporting configuration problems as
    /// [`BstError::InvalidConfig`] instead of panicking.
    pub fn try_build(self) -> Result<BstSystem, BstError> {
        self.cfg.validate()?;
        let mut plan = TreePlan::for_accuracy(
            self.namespace,
            self.expected_set_size,
            self.accuracy,
            self.k,
            self.kind,
            self.seed,
            128.0,
        );
        if self.measure_costs {
            let hasher = std::sync::Arc::new(plan.build_hasher());
            plan = CostModel::measure(&hasher).retune_plan(&plan);
        }
        if let Some(d) = self.depth_override {
            plan.depth = d;
            plan.leaf_capacity = params::leaf_size(self.namespace, d);
        }
        if plan.kind == HashKind::DeltaBlocked && plan.m < bst_bloom::MIN_BLOCKED_BITS {
            return Err(BstError::InvalidConfig(
                "blocked layout needs m >= one 128-bit block; raise accuracy or set size",
            ));
        }
        let tree = match self.occupied {
            None => TreeBackend::dense(BloomSampleTree::build_with_threads(&plan, self.threads)),
            Some(mut occ) => {
                occ.sort_unstable();
                occ.dedup();
                if occ.last().is_some_and(|&last| last >= self.namespace) {
                    return Err(BstError::InvalidConfig("occupied id outside the namespace"));
                }
                let mut pruned = PrunedBloomSampleTree::build(&plan, &occ);
                pruned.set_journal_cap(self.cfg.journal_cap);
                TreeBackend::pruned(pruned)
            }
        };
        let store = BstStore::new(Arc::clone(tree.hasher()), tree.namespace());
        Ok(BstSystem {
            shared: Arc::new(SystemShared {
                tree,
                cfg: self.cfg,
                store,
                tracer: Tracer::disabled(),
            }),
        })
    }
}

/// The tree backend, filter store and configuration every handle points
/// at.
pub(crate) struct SystemShared {
    pub(crate) tree: TreeBackend,
    pub(crate) cfg: BstConfig,
    pub(crate) store: BstStore,
    /// Observability facade every [`Query`] op reports spans into;
    /// disabled (one branch per op) until a recorder is installed.
    pub(crate) tracer: Tracer,
}

/// A ready-to-use sampling/reconstruction system over one namespace: a
/// tree backend (dense or pruned) plus the mutable filter store `D̄`.
///
/// Cloning is an `Arc` bump: all clones share one tree and one store, and
/// the handle is `Send + Sync`, so a server can hand one clone to each
/// worker thread. Per-filter operations go through [`Self::query`]
/// (detached filters) or [`Self::query_id`] (store-registered sets).
#[derive(Clone)]
pub struct BstSystem {
    shared: Arc<SystemShared>,
}

impl std::fmt::Debug for BstSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BstSystem({:?}, handles={})",
            self.shared.tree,
            Arc::strong_count(&self.shared)
        )
    }
}

impl BstSystem {
    /// Starts building a system over `[0, namespace)`.
    pub fn builder(namespace: u64) -> BstSystemBuilder {
        BstSystemBuilder::new(namespace)
    }

    /// The underlying tree backend (dense or pruned). Acquire a
    /// [`crate::backend::TreeView`] via [`TreeBackend::read`] to plug it
    /// into the sampler/reconstructor layers directly.
    pub fn tree(&self) -> &TreeBackend {
        &self.shared.tree
    }

    /// The system's mutable filter database `D̄`.
    pub fn filters(&self) -> &BstStore {
        &self.shared.store
    }

    /// The full behaviour configuration.
    pub fn config(&self) -> BstConfig {
        self.shared.cfg
    }

    /// The system's tracing facade. Disabled by default; while disabled
    /// every [`Query`] operation pays one relaxed atomic load and a
    /// branch, nothing more.
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Installs (or with `None`, removes) the span recorder every
    /// [`Query`] operation on this system reports into.
    pub fn set_recorder(&self, recorder: Option<std::sync::Arc<dyn bst_obs::Recorder>>) {
        self.shared.tracer.set_recorder(recorder);
    }

    /// The sampler configuration.
    pub fn sampler_config(&self) -> SamplerConfig {
        self.shared.cfg.sampler
    }

    /// Stores a key set as a query Bloom filter compatible with the tree.
    pub fn store<I: IntoIterator<Item = u64>>(&self, keys: I) -> BloomFilter {
        self.shared.tree.query_filter(keys)
    }

    /// Opens a [`Query`] handle on `filter`: the filter is captured once
    /// and descent state (node liveness, descent weights, leaf matches,
    /// the corrected sampler's frontier cache) accumulates across
    /// operations, so repeated sampling or reconstruction of the same
    /// filter skips already-evaluated tree intersections.
    pub fn query(&self, filter: &BloomFilter) -> Query {
        Query::new(self.clone(), filter.clone())
    }

    /// [`Self::query`] taking ownership of the filter (no clone).
    pub fn query_owned(&self, filter: BloomFilter) -> Query {
        Query::new(self.clone(), filter)
    }

    /// The live-leaf weight of `filter` — exactly the count
    /// [`Query::live_weight`] reports, i.e. the number of elements
    /// [`Query::reconstruct`] would return — computed in one shot,
    /// without opening (and paying for) a full handle. Useful for
    /// weighing many filters whose descent state is not worth keeping,
    /// e.g. when filling an external weight cache such as the sharded
    /// engine's.
    pub fn live_weight(&self, filter: &BloomFilter) -> Result<u64, BstError> {
        self.live_weight_stamped(filter).0
    }

    /// [`Self::live_weight`] plus the tree generation it was computed at,
    /// read under the same tree view as the walk — so a caller caching
    /// the weight can key it to exactly the occupancy state it reflects.
    /// On hard errors the generation is still the view's and should not
    /// be used for caching.
    pub fn live_weight_stamped(&self, filter: &BloomFilter) -> (Result<u64, BstError>, u64) {
        let view = self.shared.tree.read();
        let generation = view.generation();
        if let Some(root) = view.root() {
            if !filter.compatible_with(view.filter(root)) {
                return (Err(BstError::IncompatibleFilter), generation);
            }
        }
        let recon = BstReconstructor::with_config(&view, self.shared.cfg.reconstruct);
        let mut memo = QueryMemo::new();
        let mut stats = OpStats::new();
        (
            recon.try_count_memo(filter, &mut memo, &mut stats),
            generation,
        )
    }

    /// Journal-replay hook for **external** weight memos: brings a
    /// live-leaf `weight` for `filter`, computed at tree generation
    /// `since` (by [`Self::live_weight_stamped`] or a handle's
    /// [`Query::live_weight`]), up to the current generation by replaying
    /// the tree's bounded mutation journal — an O(k) delta per mutation
    /// instead of a counting walk. Returns the repaired weight and the
    /// generation it is now valid at.
    ///
    /// Returns `None` whenever the delta is not provably exact: the
    /// reconstruction liveness is not the sound `BitOverlap` rule, the
    /// journal no longer covers the generation gap, or the collision
    /// census blocks the positives-equal-count identity (see
    /// [`crate::backend::TreeView::replay_count`]) — the caller must
    /// then recompute. Set churn is *not* covered: this hook repairs
    /// across occupancy mutations only, so callers tracking a stored set
    /// must separately discard on set-generation movement.
    pub fn repair_live_weight(
        &self,
        filter: &BloomFilter,
        since: u64,
        weight: u64,
    ) -> Option<(u64, u64)> {
        if self.shared.cfg.reconstruct.liveness != Liveness::BitOverlap {
            return None;
        }
        let view = self.shared.tree.read();
        let generation = view.generation();
        if generation == since {
            return Some((weight, generation));
        }
        view.replay_count(since, filter, weight)
            .map(|w| (w, generation))
    }

    /// Draws one sample per query filter, in parallel over `threads`
    /// worker threads (0 = one per CPU). Results align with `filters`;
    /// each entry carries its own typed failure reason. Deterministic for
    /// a fixed `seed`, thread count and filter order.
    pub fn query_batch(
        &self,
        filters: &[BloomFilter],
        seed: u64,
        threads: usize,
    ) -> (Vec<Result<u64, BstError>>, OpStats) {
        let view = self.shared.tree.read();
        multiquery::sample_each(&view, filters, self.shared.cfg.sampler, seed, threads)
    }

    /// [`Self::query_batch`] addressed by store id: projects each stored
    /// set once, then samples the batch in parallel. Results align with
    /// `ids`; an unknown/dropped id yields `Err(UnknownFilterId)` for its
    /// slot without failing the rest of the batch.
    pub fn query_batch_ids(
        &self,
        ids: &[FilterId],
        seed: u64,
        threads: usize,
    ) -> (Vec<Result<u64, BstError>>, OpStats) {
        // Project once, moving each Ok filter into the sampling batch and
        // keeping only the Ok/Err skeleton for realignment afterwards.
        let mut filters = Vec::with_capacity(ids.len());
        let slots: Vec<Result<(), BstError>> = ids
            .iter()
            .map(|&id| self.shared.store.get(id).map(|f| filters.push(f)))
            .collect();
        let view = self.shared.tree.read();
        let (sampled, stats) =
            multiquery::sample_each(&view, &filters, self.shared.cfg.sampler, seed, threads);
        drop(view);
        let mut sampled = sampled.into_iter();
        let results = slots
            .into_iter()
            .map(|r| match r {
                Ok(()) => match sampled.next() {
                    Some(s) => s,
                    None => Err(BstError::InvalidConfig(
                        "internal: batch produced fewer samples than projected filters",
                    )),
                },
                Err(e) => Err(e),
            })
            .collect();
        (results, stats)
    }

    // ------------------------------------------------------------------
    // The store facade: D̄ as id-addressed mutable sets.
    // ------------------------------------------------------------------

    /// Registers a mutable set over `keys` in the system's store,
    /// returning its stable [`FilterId`]. Keys outside the namespace are
    /// rejected as [`BstError::KeyOutsideNamespace`] (they could never be
    /// sampled or reconstructed) without creating anything.
    pub fn create<I: IntoIterator<Item = u64>>(&self, keys: I) -> Result<FilterId, BstError> {
        self.shared.store.create(keys)
    }

    /// Inserts `keys` into the stored set, bumping its generation (open
    /// [`Query`] handles re-descend cold on their next operation).
    /// Returns the new generation.
    pub fn insert_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<u64, BstError> {
        self.shared.store.insert_keys(id, keys)
    }

    /// Removes `keys` from the stored set (counting-filter semantics),
    /// bumping its generation. Returns the new generation.
    pub fn remove_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<u64, BstError> {
        self.shared.store.remove_keys(id, keys)
    }

    /// Projects the stored set to a plain [`BloomFilter`] snapshot.
    pub fn get(&self, id: FilterId) -> Result<BloomFilter, BstError> {
        self.shared.store.get(id)
    }

    /// Unregisters a stored set; its id is retired and open handles
    /// report [`BstError::UnknownFilterId`] from their next operation.
    pub fn drop_set(&self, id: FilterId) -> Result<(), BstError> {
        self.shared.store.drop_set(id)
    }

    /// Opens a generation-stamped [`Query`] handle on a stored set. The
    /// handle re-checks the stamp on every operation: if `insert_keys` /
    /// `remove_keys` moved the set past the handle's generation, the
    /// filter is re-projected and the memo discarded before the operation
    /// runs, so results are never computed against a superseded set.
    pub fn query_id(&self, id: FilterId) -> Result<Query, BstError> {
        let (filter, generation) = self.shared.store.snapshot(id)?;
        Ok(Query::new_stored(self.clone(), id, filter, generation))
    }

    // ------------------------------------------------------------------
    // Whole-system persistence.
    // ------------------------------------------------------------------

    /// Serializes the entire system — behaviour configuration, tree
    /// backend, and filter store (counting filters + generations) — into
    /// one snapshot buffer. Byte-deterministic for a given system state.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(SYSTEM_MAGIC);
        buf.put_u8(persistence::VERSION);
        persistence::put_sampler_config(&mut buf, &self.shared.cfg.sampler);
        persistence::put_reconstruct_config(&mut buf, &self.shared.cfg.reconstruct);
        buf.put_u32_le(self.shared.cfg.journal_cap.min(u32::MAX as usize) as u32);
        self.shared.tree.put_bytes(&mut buf);
        self.shared.store.put_bytes(&mut buf);
        buf.to_vec()
    }

    /// Restores a system serialized with [`Self::to_bytes`]: the same
    /// plan, tree bits, stored sets, generations and configuration, so
    /// samples and reconstructions match the original for the same RNG
    /// state and [`FilterId`]s remain valid addresses.
    pub fn from_bytes(input: &[u8]) -> Result<Self, BstError> {
        let mut input = input;
        persistence::check_header(&mut input, SYSTEM_MAGIC)?;
        let sampler = persistence::get_sampler_config(&mut input)?;
        let reconstruct = persistence::get_reconstruct_config(&mut input)?;
        if bytes::Buf::remaining(&input) < 4 {
            return Err(BstError::Persist(PersistError::Truncated));
        }
        let journal_cap = bytes::Buf::get_u32_le(&mut input) as usize;
        let cfg = BstConfig {
            sampler,
            reconstruct,
            journal_cap,
        };
        cfg.validate()
            .map_err(|_| PersistError::Corrupt("snapshot configuration invalid"))?;
        let tree = TreeBackend::get_bytes(&mut input)?;
        tree.set_journal_cap(journal_cap);
        let store = BstStore::get_bytes(&mut input, Arc::clone(tree.hasher()), tree.namespace())?;
        if !input.is_empty() {
            return Err(BstError::Persist(PersistError::Corrupt(
                "trailing bytes after system snapshot",
            )));
        }
        Ok(BstSystem {
            shared: Arc::new(SystemShared {
                tree,
                cfg,
                store,
                tracer: Tracer::disabled(),
            }),
        })
    }

    // ------------------------------------------------------------------
    // Namespace occupancy (§5.2), pruned backends only.
    // ------------------------------------------------------------------

    /// Marks a namespace id occupied on the pruned backend (§5.2 dynamic
    /// insertion), bumping the tree generation when the occupancy
    /// actually changed so every open [`Query`] handle repairs its
    /// cached descent state along the mutated path on its next
    /// operation. Subtree weights are maintained by an O(depth) delta
    /// along the same path. Returns the resulting tree generation.
    ///
    /// Dense backends are fully occupied by construction and report
    /// [`BstError::ImmutableBackend`]; ids outside `[0, M)` report
    /// [`BstError::KeyOutsideNamespace`].
    pub fn insert_occupied(&self, id: u64) -> Result<u64, BstError> {
        self.shared.tree.insert_occupied(id)
    }

    /// Removes a namespace id from the pruned backend's occupied set
    /// (path filters are rebuilt exactly; emptied subtrees unlink),
    /// bumping the tree generation when the occupancy actually changed.
    /// Returns the resulting tree generation. Same failure modes as
    /// [`Self::insert_occupied`].
    pub fn remove_occupied(&self, id: u64) -> Result<u64, BstError> {
        self.shared.tree.remove_occupied(id)
    }

    /// Whether `id` is an occupied namespace element (exact; always true
    /// inside the namespace on a dense backend).
    pub fn contains_occupied(&self, id: u64) -> bool {
        self.shared.tree.contains_occupied(id)
    }

    /// Number of occupied namespace ids (the full namespace for a dense
    /// backend).
    pub fn occupied_count(&self) -> u64 {
        self.shared.tree.occupied_count()
    }

    /// All occupied namespace ids, ascending. `O(M)` on a dense backend —
    /// intended for pruned backends and small dense systems.
    pub fn occupied_ids(&self) -> Vec<u64> {
        self.shared.tree.occupied_ids()
    }

    /// The backend's current tree generation (0 forever on a dense
    /// backend; the occupancy-mutation count on a pruned one).
    pub fn tree_generation(&self) -> u64 {
        self.shared.tree.generation()
    }

    /// Whether the pruned backend's maintained subtree weights match a
    /// from-scratch recount (trivially true on a dense backend). The
    /// conformance and property suites use this as ground truth;
    /// `O(nodes)`, so not a hot-path call.
    pub fn weights_consistent(&self) -> bool {
        self.shared.tree.weights_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_defaults_produce_working_system() {
        let sys = BstSystem::builder(50_000).build();
        let keys: Vec<u64> = (0..200u64).map(|i| i * 11).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(1);
        let s = q.sample(&mut rng).expect("sample");
        assert!(f.contains(s));
        let rec = q.reconstruct().expect("reconstruct");
        for k in &keys {
            assert!(rec.binary_search(k).is_ok());
        }
    }

    #[test]
    fn accuracy_touches_filter_size() {
        let lo = BstSystem::builder(100_000).accuracy(0.5).build();
        let hi = BstSystem::builder(100_000).accuracy(0.99).build();
        assert!(hi.tree().plan().m > lo.tree().plan().m);
    }

    #[test]
    fn depth_override_respected() {
        let sys = BstSystem::builder(10_000).depth(3).build();
        assert_eq!(sys.tree().depth(), 3);
        assert_eq!(sys.tree().node_count(), 15);
    }

    #[test]
    fn hash_kind_flows_through() {
        let sys = BstSystem::builder(10_000)
            .hash_kind(HashKind::Simple)
            .build();
        assert!(sys.tree().hasher().is_invertible());
    }

    #[test]
    fn blocked_layout_flows_through_and_round_trips() {
        let sys = BstSystem::builder(10_000)
            .hash_kind(HashKind::DeltaBlocked)
            .pruned((0..10_000).step_by(3))
            .build();
        assert_eq!(sys.tree().hasher().kind(), HashKind::DeltaBlocked);
        let f = sys.store((0..10_000).step_by(9));
        let recon = sys.query(&f).reconstruct().unwrap();
        assert!(recon.iter().all(|x| x % 3 == 0));
        // Snapshots carry the layout tag: the restored system keeps the
        // blocked hasher and reconstructs identically.
        let bytes = sys.to_bytes();
        let back = BstSystem::from_bytes(&bytes).unwrap();
        assert_eq!(back.tree().hasher().kind(), HashKind::DeltaBlocked);
        assert_eq!(back.query(&f).reconstruct().unwrap(), recon);
    }

    #[test]
    fn blocked_layout_rejects_sub_block_filters() {
        // Accuracy sizing for a tiny expected set yields m < 128 bits,
        // which the blocked geometry cannot address.
        assert!(matches!(
            BstSystem::builder(10_000)
                .hash_kind(HashKind::DeltaBlocked)
                .expected_set_size(1)
                .accuracy(0.5)
                .try_build(),
            Err(crate::error::BstError::InvalidConfig(_))
        ));
    }

    #[test]
    fn system_is_cheap_to_clone_and_threadsafe() {
        fn assert_traits<T: Clone + Send + Sync + 'static>() {}
        assert_traits::<BstSystem>();
        let sys = BstSystem::builder(10_000).build();
        let clone = sys.clone();
        // Clones share the identical tree allocation.
        assert!(std::ptr::eq(sys.tree(), clone.tree()));
    }

    #[test]
    fn unified_config_reaches_both_algorithms() {
        let sys = BstSystem::builder(10_000)
            .config(BstConfig::paper())
            .build();
        assert_eq!(sys.config().sampler, SamplerConfig::paper());
        assert_eq!(sys.config().reconstruct, ReconstructConfig::paper());
        // Partial setters keep the rest of the config intact.
        let sys2 = BstSystem::builder(10_000)
            .sampler(SamplerConfig::corrected())
            .build();
        assert_eq!(sys2.config().sampler, SamplerConfig::corrected());
        assert_eq!(sys2.config().reconstruct, ReconstructConfig::default());
    }

    #[test]
    fn try_build_rejects_invalid_configs() {
        use crate::sampler::Correction;
        let bad_gamma = BstConfig::default().with_sampler(SamplerConfig {
            correction: Correction::Rejection { gamma: 0.5 },
            ..SamplerConfig::default()
        });
        assert!(matches!(
            BstSystem::builder(10_000).config(bad_gamma).try_build(),
            Err(crate::error::BstError::InvalidConfig(_))
        ));
        let bad_tau = BstConfig::default().with_sampler(SamplerConfig {
            liveness: crate::sampler::Liveness::EstimateThreshold(-1.0),
            ..SamplerConfig::default()
        });
        assert!(matches!(
            BstSystem::builder(10_000).config(bad_tau).try_build(),
            Err(crate::error::BstError::InvalidConfig(_))
        ));
        assert!(BstSystem::builder(10_000).try_build().is_ok());
    }

    #[test]
    fn sample_many_works_via_query_handle() {
        let sys = BstSystem::builder(10_000).build();
        let f = sys.store((0..100u64).map(|i| i * 3));
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = q.sample_many(50, &mut rng).expect("sample_many");
        assert_eq!(samples.len(), 50);
        for s in samples {
            assert!(f.contains(s));
        }
    }

    #[test]
    fn occupancy_evolves_through_the_facade() {
        let occ: Vec<u64> = (0..10_000u64).step_by(4).collect();
        let sys = BstSystem::builder(10_000)
            .pruned(occ.iter().copied())
            .build();
        assert_eq!(sys.occupied_count(), occ.len() as u64);
        assert_eq!(sys.occupied_ids(), occ);
        assert_eq!(sys.tree_generation(), 0);
        assert!(!sys.contains_occupied(3));
        assert_eq!(sys.insert_occupied(3), Ok(1));
        assert!(sys.contains_occupied(3));
        assert_eq!(sys.insert_occupied(3), Ok(1), "no-op insert keeps gen");
        assert_eq!(sys.remove_occupied(0), Ok(2));
        assert_eq!(sys.occupied_count(), occ.len() as u64);
        assert_eq!(
            sys.insert_occupied(10_000),
            Err(BstError::KeyOutsideNamespace(10_000))
        );
        // Dense backends refuse occupancy mutations with a typed error.
        let dense = BstSystem::builder(10_000).build();
        assert_eq!(dense.insert_occupied(3), Err(BstError::ImmutableBackend));
        assert_eq!(dense.remove_occupied(3), Err(BstError::ImmutableBackend));
        assert_eq!(dense.occupied_count(), 10_000);
        assert_eq!(dense.tree_generation(), 0);
    }

    #[test]
    fn pruned_backend_serves_the_same_surface() {
        let occ: Vec<u64> = (0..10_000u64).step_by(7).collect();
        let sys = BstSystem::builder(10_000)
            .pruned(occ.iter().copied())
            .build();
        assert!(sys.tree().is_pruned());
        assert_eq!(sys.tree().occupied_count(), occ.len() as u64);
        let keys: Vec<u64> = occ.iter().copied().step_by(5).collect();
        let f = sys.store(keys.iter().copied());
        let q = sys.query(&f);
        let mut rng = StdRng::seed_from_u64(21);
        let s = q.sample(&mut rng).expect("sample");
        assert!(occ.binary_search(&s).is_ok(), "samples only occupied ids");
        let rec = q.reconstruct().expect("reconstruct");
        for k in &keys {
            assert!(rec.binary_search(k).is_ok());
        }
        // Batch surface too.
        let filters = vec![f.clone(), f];
        let (results, _) = sys.query_batch(&filters, 3, 2);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn pruned_builder_sorts_dedups_and_validates() {
        let sys = BstSystem::builder(4_096)
            .expected_set_size(10)
            .pruned([50u64, 3, 50, 999, 3])
            .build();
        assert_eq!(sys.tree().occupied_count(), 3);
        assert!(matches!(
            BstSystem::builder(4_096)
                .expected_set_size(10)
                .pruned([4_096u64])
                .try_build(),
            Err(BstError::InvalidConfig(_))
        ));
    }

    #[test]
    fn store_facade_lifecycle_and_query_id() {
        let sys = BstSystem::builder(10_000).build();
        let id = sys
            .create((0..120u64).map(|i| i * 13 % 10_000))
            .expect("create");
        assert_eq!(sys.filters().len(), 1);
        let q = sys.query_id(id).expect("open");
        let mut rng = StdRng::seed_from_u64(4);
        let s = q.sample(&mut rng).expect("sample");
        assert!(sys.get(id).expect("get").contains(s));
        // Mutate through the facade; the handle refreshes transparently.
        sys.insert_keys(id, [4_242u64]).expect("insert");
        let rec = q.reconstruct().expect("reconstruct");
        assert!(rec.binary_search(&4_242).is_ok());
        assert_eq!(q.generation(), 1);
        sys.drop_set(id).expect("drop");
        assert_eq!(sys.query_id(id).err(), Some(BstError::UnknownFilterId(id)));
        assert!(sys.filters().is_empty());
    }

    #[test]
    fn query_batch_ids_aligns_and_reports_unknown() {
        let sys = BstSystem::builder(20_000).build();
        let ids: Vec<_> = (0..6)
            .map(|i| {
                sys.create((0..40u64).map(|j| (i * 911 + j * 17) % 20_000))
                    .expect("create")
            })
            .collect();
        let dropped = ids[2];
        sys.drop_set(dropped).expect("drop");
        let (results, stats) = sys.query_batch_ids(&ids, 9, 3);
        assert_eq!(results.len(), ids.len());
        for (i, (id, r)) in ids.iter().zip(&results).enumerate() {
            if *id == dropped {
                assert_eq!(*r, Err(BstError::UnknownFilterId(dropped)));
            } else {
                let s = r.expect("sample");
                assert!(sys.get(*id).expect("get").contains(s), "slot {i}");
            }
        }
        assert!(stats.total_ops() > 0);
    }

    #[test]
    fn system_snapshot_roundtrip_dense_and_pruned() {
        for pruned in [false, true] {
            let mut builder = BstSystem::builder(8_192)
                .expected_set_size(100)
                .seed(17)
                .config(BstConfig::corrected());
            if pruned {
                builder = builder.pruned((0..8_192u64).step_by(3));
            }
            let sys = builder.build();
            let a = sys
                .create((0..300u64).map(|i| i * 27 % 8_192))
                .expect("create");
            let b = sys
                .create((0..90u64).map(|i| i * 81 % 8_192))
                .expect("create");
            sys.remove_keys(a, [0u64, 27]).expect("remove");
            sys.drop_set(b).expect("drop");

            let bytes = sys.to_bytes();
            let restored = BstSystem::from_bytes(&bytes).expect("restore");
            assert_eq!(restored.config(), sys.config());
            assert_eq!(restored.tree().is_pruned(), pruned);
            assert_eq!(restored.tree().plan(), sys.tree().plan());
            assert_eq!(restored.filters().ids(), sys.filters().ids());
            assert_eq!(restored.filters().generation(a), Ok(1));

            // Same samples for the same RNG state, same reconstruction.
            let q1 = sys.query_id(a).expect("open");
            let q2 = restored.query_id(a).expect("open");
            let mut r1 = StdRng::seed_from_u64(5);
            let mut r2 = StdRng::seed_from_u64(5);
            for _ in 0..20 {
                assert_eq!(q1.sample(&mut r1), q2.sample(&mut r2));
            }
            assert_eq!(q1.reconstruct(), q2.reconstruct());
            // Snapshot determinism.
            assert_eq!(bytes, restored.to_bytes());
        }
    }

    #[test]
    fn snapshot_decode_rejects_garbage() {
        let sys = BstSystem::builder(4_096).build();
        let bytes = sys.to_bytes();
        assert_eq!(
            BstSystem::from_bytes(&bytes[..10]).err(),
            Some(BstError::Persist(
                crate::persistence::PersistError::Truncated
            ))
        );
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(
            BstSystem::from_bytes(&wrong).err(),
            Some(BstError::Persist(
                crate::persistence::PersistError::BadMagic
            ))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            BstSystem::from_bytes(&trailing).err(),
            Some(BstError::Persist(
                crate::persistence::PersistError::Corrupt(_)
            ))
        ));
    }

    #[test]
    fn query_batch_serves_many_filters() {
        let sys = BstSystem::builder(20_000).build();
        let filters: Vec<_> = (0..12)
            .map(|i| sys.store((0..40u64).map(|j| (i * 997 + j * 13) % 20_000)))
            .collect();
        let (results, stats) = sys.query_batch(&filters, 5, 3);
        assert_eq!(results.len(), filters.len());
        for (f, r) in filters.iter().zip(&results) {
            let s = r.expect("sample for non-empty filter");
            assert!(f.contains(s));
        }
        assert!(stats.total_ops() > 0);
    }
}
