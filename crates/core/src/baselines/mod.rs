//! The two baseline methods the paper compares against (§4):
//! [`dictionary`] (DictionaryAttack, `O(M)` but exactly uniform) and
//! [`hashinvert`] (HashInvert, `O(m + kM/m)` per sample via weakly
//! invertible hash functions, no uniformity guarantee).

pub mod dictionary;
pub mod hashinvert;

pub use dictionary::{da_reconstruct, da_sample};
pub use hashinvert::{hi_reconstruct, hi_sample};
