//! The DictionaryAttack baseline (§4): fire a membership query for every
//! element of the namespace.
//!
//! Sampling keeps a reservoir of size one over the positives so the result
//! is exactly uniform over `S ∪ S(B)` [Vitter '85]; reconstruction collects
//! every positive. Complexity `O(M)` memberships — the cost the
//! BloomSampleTree exists to avoid.

use bst_bloom::filter::BloomFilter;
use rand::Rng;

use crate::metrics::OpStats;

/// Uniformly samples one element of `S ∪ S(B)` by scanning `[0, namespace)`
/// with reservoir sampling. Returns `None` only if the filter matches no
/// namespace element.
pub fn da_sample<R: Rng + ?Sized>(
    query: &BloomFilter,
    namespace: u64,
    rng: &mut R,
    stats: &mut OpStats,
) -> Option<u64> {
    let mut picked = None;
    let mut count = 0u64;
    for x in 0..namespace {
        stats.memberships += 1;
        if query.contains(x) {
            count += 1;
            // The (n'+1)-th positive replaces the reservoir with
            // probability 1/(n'+1).
            if rng.gen_range(0..count) == 0 {
                picked = Some(x);
            }
        }
    }
    picked
}

/// Reconstructs `S ∪ S(B)` by full scan; sorted ascending by construction.
pub fn da_reconstruct(query: &BloomFilter, namespace: u64, stats: &mut OpStats) -> Vec<u64> {
    let mut out = Vec::new();
    for x in 0..namespace {
        stats.memberships += 1;
        if query.contains(x) {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filter_with(keys: &[u64]) -> BloomFilter {
        let mut f = BloomFilter::with_params(HashKind::Murmur3, 3, 1 << 18, 10_000, 2);
        for &k in keys {
            f.insert(k);
        }
        f
    }

    #[test]
    fn reconstruct_recovers_exactly_at_high_m() {
        let keys: Vec<u64> = (0..200u64).map(|i| i * 31 + 7).collect();
        let q = filter_with(&keys);
        let mut stats = OpStats::new();
        let rec = da_reconstruct(&q, 10_000, &mut stats);
        assert_eq!(rec, keys);
        assert_eq!(stats.memberships, 10_000, "always exactly M memberships");
    }

    #[test]
    fn sample_is_always_a_positive() {
        let keys: Vec<u64> = (0..50u64).map(|i| i * 101).collect();
        let q = filter_with(&keys);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OpStats::new();
        for _ in 0..20 {
            let s = da_sample(&q, 10_000, &mut rng, &mut stats).expect("sample");
            assert!(q.contains(s));
        }
    }

    #[test]
    fn sample_distribution_uniform() {
        let keys: Vec<u64> = (0..20u64).map(|i| i * 313 + 5).collect();
        let q = filter_with(&keys);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = OpStats::new();
        let mut counts = vec![0u64; keys.len()];
        for _ in 0..2600 {
            let s = da_sample(&q, 10_000, &mut rng, &mut stats).expect("sample");
            counts[keys.binary_search(&s).expect("true key")] += 1;
        }
        let res = bst_stats::chi2_uniform_test(&counts);
        assert!(
            res.is_uniform_at(bst_stats::chi2::PAPER_SIGNIFICANCE),
            "reservoir sampling must be uniform: p = {}",
            res.p_value
        );
    }

    #[test]
    fn empty_filter_returns_none() {
        let q = filter_with(&[]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = OpStats::new();
        assert_eq!(da_sample(&q, 1000, &mut rng, &mut stats), None);
        assert!(da_reconstruct(&q, 1000, &mut stats).is_empty());
    }
}
