//! The HashInvert baseline (§4): exploit weakly invertible hash functions.
//!
//! **Sampling**: draw a uniformly random *set bit* `s`, invert it through
//! each of the `k` hash functions into candidate sets `P₁(s)…P_k(s)`,
//! prune each candidate with a membership query, and return a uniform draw
//! from the union of survivors. `O(m + k·M/m)` per sample, but with *no*
//! uniformity guarantee — elements colliding into popular bits are
//! over-represented, which is exactly the deficiency the paper contrasts
//! with BSTSample.
//!
//! **Reconstruction**: run the inversion over *all* set bits (already
//! tested candidates are skipped). When the filter is dense, invert the
//! *unset* bits instead: any element hashing into an unset bit is provably
//! absent, so the reconstruction is the complement of the excluded set and
//! needs no membership queries at all.

use bst_bloom::bitvec::BitVec;
use bst_bloom::filter::BloomFilter;
use rand::Rng;

use crate::metrics::OpStats;

fn require_invertible(query: &BloomFilter) -> u64 {
    assert!(
        query.hasher().is_invertible(),
        "HashInvert requires a weakly invertible (Simple/affine) hash family"
    );
    query
        .hasher()
        .namespace()
        // bst-lint: allow(L001) — documented `# Panics` contract of this experiment baseline
        .expect("affine families are namespace-aware")
}

/// Samples one positive of `query` via set-bit inversion. Returns `None`
/// for an empty filter or when (rarely) no candidate survives pruning.
///
/// # Panics
/// Panics if the filter's hash family is not invertible.
pub fn hi_sample<R: Rng + ?Sized>(
    query: &BloomFilter,
    rng: &mut R,
    stats: &mut OpStats,
) -> Option<u64> {
    require_invertible(query);
    let ones = query.count_ones();
    if ones == 0 {
        return None;
    }
    // Uniformly random set bit (the paper charges O(m) for this step).
    let s = query
        .bits()
        .select_one(rng.gen_range(0..ones))
        // bst-lint: allow(L001) — rank drawn from 0..count_ones() is always selectable
        .expect("rank < popcount");
    let k = query.k();
    let mut survivors: Vec<u64> = Vec::new();
    for i in 0..k {
        let preimages = query
            .hasher()
            .invert(i, s)
            // bst-lint: allow(L001) — require_invertible above guarantees an affine family
            .expect("invertible checked above");
        for candidate in preimages {
            stats.memberships += 1;
            if query.contains(candidate) {
                survivors.push(candidate);
            }
        }
    }
    if survivors.is_empty() {
        return None;
    }
    // The k candidate sets overlap; sample from the de-duplicated union.
    survivors.sort_unstable();
    survivors.dedup();
    Some(survivors[rng.gen_range(0..survivors.len())])
}

/// Reconstructs `S ∪ S(B)` by inverting every set bit, skipping candidates
/// already tested ("some of these values may already have been checked").
///
/// # Panics
/// Panics if the hash family is not invertible.
pub fn hi_reconstruct_set_bits(query: &BloomFilter, stats: &mut OpStats) -> Vec<u64> {
    let namespace = require_invertible(query);
    // bst-lint: allow(L001) — documented `# Panics` contract of this experiment baseline
    let ns = usize::try_from(namespace).expect("namespace fits usize");
    let mut tested = BitVec::new(ns.max(1));
    let mut confirmed = BitVec::new(ns.max(1));
    let k = query.k();
    for s in query.bits().iter_ones() {
        for i in 0..k {
            // bst-lint: allow(L001) — require_invertible above guarantees an affine family
            let preimages = query.hasher().invert(i, s).expect("invertible");
            for candidate in preimages {
                let c = candidate as usize;
                if tested.get(c) {
                    continue;
                }
                tested.set(c);
                stats.memberships += 1;
                if query.contains(candidate) {
                    confirmed.set(c);
                }
            }
        }
    }
    confirmed.iter_ones().map(|x| x as u64).collect()
}

/// Reconstructs via the dense-filter trick: inverting every *unset* bit
/// yields all provably absent elements; the answer is the complement.
/// Zero membership queries.
///
/// # Panics
/// Panics if the hash family is not invertible.
pub fn hi_reconstruct_unset_bits(query: &BloomFilter, stats: &mut OpStats) -> Vec<u64> {
    let namespace = require_invertible(query);
    // bst-lint: allow(L001) — documented `# Panics` contract of this experiment baseline
    let ns = usize::try_from(namespace).expect("namespace fits usize");
    let mut excluded = BitVec::new(ns.max(1));
    let k = query.k();
    for s in query.bits().iter_zeros() {
        for i in 0..k {
            // bst-lint: allow(L001) — require_invertible above guarantees an affine family
            let preimages = query.hasher().invert(i, s).expect("invertible");
            for candidate in preimages {
                excluded.set(candidate as usize);
            }
        }
    }
    let _ = stats; // no membership queries in this mode
    excluded.negate();
    excluded
        .iter_ones()
        .map(|x| x as u64)
        .filter(|&x| x < namespace)
        .collect()
}

/// Reconstruction with automatic mode selection: set-bit inversion for
/// sparse filters, unset-bit complementing for dense ones (§4's "simple
/// trick").
pub fn hi_reconstruct(query: &BloomFilter, stats: &mut OpStats) -> Vec<u64> {
    if query.count_ones() * 2 <= query.m() {
        hi_reconstruct_set_bits(query, stats)
    } else {
        hi_reconstruct_unset_bits(query, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NAMESPACE: u64 = 20_000;

    fn filter_with(keys: &[u64], m: usize) -> BloomFilter {
        let mut f = BloomFilter::with_params(HashKind::Simple, 3, m, NAMESPACE, 4);
        for &k in keys {
            f.insert(k);
        }
        f
    }

    #[test]
    fn sample_is_always_a_positive() {
        let keys: Vec<u64> = (0..100u64).map(|i| i * 151 + 3).collect();
        let q = filter_with(&keys, 1 << 14);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OpStats::new();
        for _ in 0..50 {
            let s = hi_sample(&q, &mut rng, &mut stats).expect("sample");
            assert!(q.contains(s));
        }
        assert!(stats.memberships > 0);
    }

    #[test]
    fn sample_covers_the_set() {
        let keys: Vec<u64> = (0..20u64).map(|i| i * 707 + 9).collect();
        let q = filter_with(&keys, 1 << 14);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = OpStats::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            if let Some(s) = hi_sample(&q, &mut rng, &mut stats) {
                seen.insert(s);
            }
        }
        for k in &keys {
            assert!(seen.contains(k), "key {k} never sampled");
        }
    }

    #[test]
    fn empty_filter_samples_none() {
        let q = filter_with(&[], 1 << 12);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = OpStats::new();
        assert_eq!(hi_sample(&q, &mut rng, &mut stats), None);
    }

    #[test]
    fn set_bit_reconstruction_matches_dictionary_attack() {
        let keys: Vec<u64> = (0..150u64).map(|i| i * 111 + 17).collect();
        let q = filter_with(&keys, 1 << 14);
        let mut s1 = OpStats::new();
        let rec = hi_reconstruct_set_bits(&q, &mut s1);
        let mut s2 = OpStats::new();
        let da = crate::baselines::dictionary::da_reconstruct(&q, NAMESPACE, &mut s2);
        assert_eq!(rec, da, "HashInvert must recover exactly the positives");
        // And with fewer membership queries than the full scan.
        assert!(
            s1.memberships < s2.memberships,
            "HI {} vs DA {} memberships",
            s1.memberships,
            s2.memberships
        );
    }

    #[test]
    fn unset_bit_reconstruction_matches_dictionary_attack() {
        // Small, dense filter.
        let keys: Vec<u64> = (0..400u64).map(|i| i * 41 + 1).collect();
        let q = filter_with(&keys, 1024);
        assert!(q.fill_ratio() > 0.5, "test needs a dense filter");
        let mut s1 = OpStats::new();
        let rec = hi_reconstruct_unset_bits(&q, &mut s1);
        let mut s2 = OpStats::new();
        let da = crate::baselines::dictionary::da_reconstruct(&q, NAMESPACE, &mut s2);
        assert_eq!(rec, da);
        assert_eq!(s1.memberships, 0, "unset-bit mode needs no memberships");
    }

    #[test]
    fn auto_mode_picks_correctly() {
        let sparse_keys: Vec<u64> = (0..50u64).collect();
        let sparse = filter_with(&sparse_keys, 1 << 14);
        let mut stats = OpStats::new();
        let rec = hi_reconstruct(&sparse, &mut stats);
        assert!(stats.memberships > 0, "sparse path uses memberships");
        for k in &sparse_keys {
            assert!(rec.binary_search(k).is_ok());
        }

        let dense_keys: Vec<u64> = (0..500u64).map(|i| i * 37).collect();
        let dense = filter_with(&dense_keys, 1024);
        let mut stats2 = OpStats::new();
        let rec2 = hi_reconstruct(&dense, &mut stats2);
        assert_eq!(stats2.memberships, 0, "dense path avoids memberships");
        for k in &dense_keys {
            assert!(rec2.binary_search(k).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "weakly invertible")]
    fn non_invertible_family_panics() {
        let q = BloomFilter::with_params(HashKind::Murmur3, 3, 1024, 1000, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut stats = OpStats::new();
        let _ = hi_sample(&q, &mut rng, &mut stats);
    }
}
