#![forbid(unsafe_code)]
//! # bst-core — BloomSampleTree sampling and reconstruction
//!
//! The primary contribution of *Sampling and Reconstruction Using Bloom
//! Filters* (Sengupta et al., ICDE 2017):
//!
//! * [`tree::BloomSampleTree`] — the complete tree of Definition 5.1, with
//!   the [`tree::SampleTree`] navigation trait;
//! * [`pruned::PrunedBloomSampleTree`] — the occupancy-aware variant
//!   (§5.2) with dynamic insertion;
//! * [`sampler::BstSampler`] — BSTSample (Algorithm 1) plus the one-pass
//!   multi-sampler (§5.3);
//! * [`reconstruct::BstReconstructor`] — set reconstruction (§6);
//! * [`baselines`] — DictionaryAttack and HashInvert (§4);
//! * [`metrics::OpStats`] — the intersection/membership accounting behind
//!   Figures 3–4 and 8–12;
//! * [`costmodel::CostModel`] — runtime `icost/mcost` calibration (§5.4);
//! * [`multiquery`] — parallel batch sampling over many query filters;
//! * [`error::BstError`] — typed failure reasons for every fallible op;
//! * [`system::BstSystem`] — the `Arc`-shared, `Send + Sync` facade over
//!   a [`backend::TreeBackend`] (dense, or pruned with tree-generation-
//!   stamped occupancy mutation) and the filter store;
//! * [`store::BstStore`] — the mutable, [`store::FilterId`]-addressed
//!   database `D̄` of counting-filter-backed sets (§3.2);
//! * [`query::Query`] — the per-filter handle with amortized descent
//!   state, opened via [`system::BstSystem::query`] or (generation-
//!   stamped, mutation-safe) [`system::BstSystem::query_id`];
//! * [`wal`] — the append-only durability log: checksummed replayable
//!   mutation records, with recovery = checkpoint + tail replay.
//!
//! ## Example
//!
//! One tree serves a mutable database of filter-backed sets; per-filter
//! work goes through generation-stamped [`query::Query`] handles and
//! batches fan out over worker threads:
//!
//! ```
//! use bst_core::system::BstSystem;
//!
//! let system = BstSystem::builder(50_000).accuracy(0.9).build();
//!
//! // A mutable stored set, addressed by id; its handle tracks churn.
//! let community = system.create((0..300u64).map(|i| i * 11)).unwrap();
//! let query = system.query_id(community).unwrap();
//! system.insert_keys(community, [49_999u64]).unwrap();
//! assert!(query.reconstruct().unwrap().binary_search(&49_999).is_ok());
//!
//! // Batch sampling across many detached filters at once.
//! let filters: Vec<_> = (0..4)
//!     .map(|i| system.store((0..40u64).map(|j| (i * 997 + j * 13) % 50_000)))
//!     .collect();
//! let (picks, _stats) = system.query_batch(&filters, 7, 0);
//! for (filter, pick) in filters.iter().zip(&picks) {
//!     assert!(filter.contains(pick.unwrap()));
//! }
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod baselines;
pub mod costmodel;
pub mod error;
pub mod metrics;
pub mod multiquery;
pub mod persistence;
pub mod pruned;
pub mod query;
pub mod reconstruct;
pub mod sampler;
pub mod store;
pub mod system;
pub mod tree;
pub mod wal;

pub use backend::{TreeBackend, TreeView};
pub use error::BstError;
pub use metrics::OpStats;
pub use persistence::PersistError;
pub use pruned::PrunedBloomSampleTree;
pub use query::Query;
pub use reconstruct::{BstReconstructor, ReconstructConfig};
pub use sampler::{BstSampler, QueryMemo, SamplerConfig};
pub use store::{BstStore, FilterId};
pub use system::{BstConfig, BstSystem};
pub use tree::{BloomSampleTree, SampleTree};
pub use wal::{FsyncPolicy, Wal, WalRecord};
