//! The mutable filter database `D̄` behind the facade.
//!
//! The paper's setting (§3.2) is a *database* of millions of sets, each
//! stored only as a Bloom filter sharing the tree's `(m, H)`. Real
//! deployments churn: community members join and leave, so plain bit
//! filters (which cannot forget) are the wrong substrate for the stored
//! sets themselves. [`BstStore`] keeps every registered set as a
//! [`CountingBloomFilter`] — insert *and* remove — addressed by a stable
//! [`FilterId`], and projects a plain [`BloomFilter`] snapshot whenever
//! the tree needs to query it.
//!
//! Every mutation bumps the set's **generation**. Query handles opened by
//! id ([`crate::system::BstSystem::query_id`]) carry the generation they
//! captured; on their next operation they compare stamps and, if stale,
//! re-project the filter and discard their [`crate::sampler::QueryMemo`]
//! (a cold re-descent) — so a handle can never serve results computed
//! against a superseded set.
//!
//! All methods take `&self` (the interior `RwLock` serialises writers and
//! lets concurrent readers project snapshots in parallel), so the store
//! is shared freely through the `Arc` inside `BstSystem`.

use std::collections::HashMap;
use std::sync::Arc;

use bst_bloom::codec;
use bst_bloom::counting::CountingBloomFilter;
use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bytes::{Buf, BufMut};
use parking_lot::RwLock;

use crate::error::BstError;
use crate::persistence::PersistError;

/// Stable address of a set registered in a [`BstStore`].
///
/// Ids are never reused within one store: dropping a set retires its id,
/// and stale handles report [`BstError::UnknownFilterId`] rather than
/// silently reading a different set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(u64);

impl FilterId {
    /// Reconstructs an id from its raw value (for wire formats / logs).
    pub fn from_raw(raw: u64) -> Self {
        FilterId(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for FilterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One registered set: its counting filter and the mutation stamp.
struct StoredSet {
    counting: CountingBloomFilter,
    generation: u64,
}

struct StoreInner {
    sets: HashMap<u64, StoredSet>,
    next_id: u64,
}

/// The id-addressed, counting-filter-backed set database of one
/// [`crate::system::BstSystem`]. Obtain it via
/// [`crate::system::BstSystem::filters`].
pub struct BstStore {
    hasher: Arc<BloomHasher>,
    /// Namespace bound `M`: stored keys must lie in `[0, M)` or they
    /// could never be answered by the tree (silent data loss).
    namespace: u64,
    inner: RwLock<StoreInner>,
}

impl std::fmt::Debug for BstStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        write!(
            f,
            "BstStore(sets={}, next_id={})",
            inner.sets.len(),
            inner.next_id
        )
    }
}

impl BstStore {
    /// An empty store whose sets share `hasher` with the tree and whose
    /// keys are bounded by `namespace`.
    pub(crate) fn new(hasher: Arc<BloomHasher>, namespace: u64) -> Self {
        BstStore {
            hasher,
            namespace,
            inner: RwLock::new(StoreInner {
                sets: HashMap::new(),
                next_id: 0,
            }),
        }
    }

    /// Validates and materialises a key batch: every key must lie inside
    /// the namespace, or the whole mutation is rejected (atomically —
    /// nothing is applied).
    fn checked_keys<I: IntoIterator<Item = u64>>(&self, keys: I) -> Result<Vec<u64>, BstError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        match keys.iter().find(|&&x| x >= self.namespace) {
            Some(&bad) => Err(BstError::KeyOutsideNamespace(bad)),
            None => Ok(keys),
        }
    }

    /// Registers a new set over `keys`, returning its stable id. The set
    /// starts at generation 0. Rejects keys outside the namespace (they
    /// could never be sampled or reconstructed) without creating anything.
    pub fn create<I: IntoIterator<Item = u64>>(&self, keys: I) -> Result<FilterId, BstError> {
        let keys = self.checked_keys(keys)?;
        let counting = CountingBloomFilter::from_keys(Arc::clone(&self.hasher), keys);
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.sets.insert(
            id,
            StoredSet {
                counting,
                generation: 0,
            },
        );
        Ok(FilterId(id))
    }

    /// Inserts `keys` into the stored set, bumping its generation when at
    /// least one key was processed. Returns the set's new generation.
    /// Rejects the whole batch if any key lies outside the namespace.
    pub fn insert_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<u64, BstError> {
        let keys = self.checked_keys(keys)?;
        let mut inner = self.inner.write();
        let set = inner
            .sets
            .get_mut(&id.0)
            .ok_or(BstError::UnknownFilterId(id))?;
        for &x in &keys {
            set.counting.insert(x);
        }
        if !keys.is_empty() {
            set.generation += 1;
        }
        Ok(set.generation)
    }

    /// Removes `keys` from the stored set (counting-filter semantics: one
    /// remove cancels one insert; removing a key that was never inserted
    /// is an unchecked logical error, as in all counting Bloom filters).
    /// Bumps the generation when at least one key was processed and
    /// returns the new generation. Rejects the whole batch if any key
    /// lies outside the namespace (such a key was never insertable).
    pub fn remove_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<u64, BstError> {
        let keys = self.checked_keys(keys)?;
        let mut inner = self.inner.write();
        let set = inner
            .sets
            .get_mut(&id.0)
            .ok_or(BstError::UnknownFilterId(id))?;
        for &x in &keys {
            set.counting.remove(x);
        }
        if !keys.is_empty() {
            set.generation += 1;
        }
        Ok(set.generation)
    }

    /// Projects the stored set to a plain [`BloomFilter`] snapshot
    /// (bit set ⇔ counter nonzero), compatible with tree operations.
    pub fn get(&self, id: FilterId) -> Result<BloomFilter, BstError> {
        Ok(self.snapshot(id)?.0)
    }

    /// [`Self::get`] plus the generation the snapshot captures — one lock
    /// acquisition, so the pair is consistent.
    pub fn snapshot(&self, id: FilterId) -> Result<(BloomFilter, u64), BstError> {
        let inner = self.inner.read();
        let set = inner.sets.get(&id.0).ok_or(BstError::UnknownFilterId(id))?;
        Ok((set.counting.to_bloom(), set.generation))
    }

    /// Re-projects only if the set has moved past `seen` generations:
    /// `Ok(None)` means `seen` is still current. One lock acquisition, so
    /// a query handle's staleness check and refresh cannot race a writer
    /// in between.
    pub fn snapshot_if_newer(
        &self,
        id: FilterId,
        seen: u64,
    ) -> Result<Option<(BloomFilter, u64)>, BstError> {
        let inner = self.inner.read();
        let set = inner.sets.get(&id.0).ok_or(BstError::UnknownFilterId(id))?;
        if set.generation == seen {
            Ok(None)
        } else {
            Ok(Some((set.counting.to_bloom(), set.generation)))
        }
    }

    /// A clone of the stored counting filter itself (counter values, not
    /// the bit projection).
    pub fn counting(&self, id: FilterId) -> Result<CountingBloomFilter, BstError> {
        let inner = self.inner.read();
        inner
            .sets
            .get(&id.0)
            .map(|s| s.counting.clone())
            .ok_or(BstError::UnknownFilterId(id))
    }

    /// Unregisters the set. Its id is retired, never reused; open handles
    /// report [`BstError::UnknownFilterId`] on their next operation.
    pub fn drop_set(&self, id: FilterId) -> Result<(), BstError> {
        let mut inner = self.inner.write();
        inner
            .sets
            .remove(&id.0)
            .map(|_| ())
            .ok_or(BstError::UnknownFilterId(id))
    }

    /// The set's current generation (0 until its first mutation).
    pub fn generation(&self, id: FilterId) -> Result<u64, BstError> {
        let inner = self.inner.read();
        inner
            .sets
            .get(&id.0)
            .map(|s| s.generation)
            .ok_or(BstError::UnknownFilterId(id))
    }

    /// Membership query against the stored (counting) set.
    pub fn contains_key(&self, id: FilterId, x: u64) -> Result<bool, BstError> {
        let inner = self.inner.read();
        inner
            .sets
            .get(&id.0)
            .map(|s| s.counting.contains(x))
            .ok_or(BstError::UnknownFilterId(id))
    }

    /// All live ids, ascending.
    pub fn ids(&self) -> Vec<FilterId> {
        let inner = self.inner.read();
        let mut ids: Vec<FilterId> = inner.sets.keys().copied().map(FilterId).collect();
        ids.sort_unstable();
        ids
    }

    /// Number of registered sets.
    pub fn len(&self) -> usize {
        self.inner.read().sets.len()
    }

    /// Whether the store holds no sets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes of all counting-filter counter arrays.
    pub fn memory_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner.sets.values().map(|s| s.counting.heap_bytes()).sum()
    }

    /// Serializes the store as
    /// `next_id u64 | count u32 | per set (ascending id): id u64,
    /// generation u64, len u64, counting-codec bytes`, appended to `buf`.
    /// Sets are written in id order so snapshots are byte-deterministic.
    pub(crate) fn put_bytes(&self, buf: &mut bytes::BytesMut) {
        let inner = self.inner.read();
        buf.put_u64_le(inner.next_id);
        buf.put_u32_le(inner.sets.len() as u32);
        let mut ids: Vec<u64> = inner.sets.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let set = &inner.sets[&id];
            buf.put_u64_le(id);
            buf.put_u64_le(set.generation);
            let payload = codec::encode_counting(&set.counting);
            buf.put_u64_le(payload.len() as u64);
            buf.put_slice(&payload);
        }
    }

    /// Decodes a store serialized with [`Self::put_bytes`]. Every decoded
    /// counting filter must share `hasher`'s parameters (the tree's), or
    /// the snapshot is structurally inconsistent.
    pub(crate) fn get_bytes(
        input: &mut &[u8],
        hasher: Arc<BloomHasher>,
        namespace: u64,
    ) -> Result<Self, PersistError> {
        if input.remaining() < 8 + 4 {
            return Err(PersistError::Truncated);
        }
        let next_id = input.get_u64_le();
        let count = input.get_u32_le() as usize;
        // Cap the pre-allocation by what the payload could possibly hold
        // (each set needs ≥ 24 header bytes): a corrupt count field must
        // fail as Truncated below, not abort in the allocator here.
        let mut sets = HashMap::with_capacity(count.min(input.remaining() / 24));
        for _ in 0..count {
            if input.remaining() < 8 + 8 + 8 {
                return Err(PersistError::Truncated);
            }
            let id = input.get_u64_le();
            if id >= next_id {
                return Err(PersistError::Corrupt("stored id beyond next_id"));
            }
            let generation = input.get_u64_le();
            let len = input.get_u64_le() as usize;
            if input.remaining() < len {
                return Err(PersistError::Truncated);
            }
            let counting = codec::decode_counting(&input[..len])
                .map_err(|_| PersistError::Corrupt("counting filter payload"))?;
            input.advance(len);
            if counting.hasher() != &hasher {
                return Err(PersistError::Corrupt(
                    "stored set hash family differs from the tree's",
                ));
            }
            // Re-point the set at the tree's hasher: the codec rebuilt an
            // identical family, but millions of sets should share the one
            // allocation rather than hold a copy each.
            let (counters, _) = counting.into_parts();
            let counting = CountingBloomFilter::from_parts(counters, Arc::clone(&hasher));
            if sets
                .insert(
                    id,
                    StoredSet {
                        counting,
                        generation,
                    },
                )
                .is_some()
            {
                return Err(PersistError::Corrupt("duplicate stored id"));
            }
        }
        Ok(BstStore {
            hasher,
            namespace,
            inner: RwLock::new(StoreInner { sets, next_id }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;

    fn store() -> BstStore {
        BstStore::new(
            Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 4096, 100_000, 7)),
            100_000,
        )
    }

    #[test]
    fn create_get_drop_lifecycle() {
        let s = store();
        assert!(s.is_empty());
        let a = s.create(0..100u64).expect("create");
        let b = s.create((0..50u64).map(|i| i * 2 + 1)).expect("create");
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), vec![a, b]);
        assert_ne!(a, b);
        let fa = s.get(a).expect("get");
        for x in 0..100u64 {
            assert!(fa.contains(x));
        }
        assert_eq!(s.generation(a), Ok(0));
        s.drop_set(a).expect("drop");
        assert_eq!(s.get(a).unwrap_err(), BstError::UnknownFilterId(a));
        assert_eq!(s.drop_set(a), Err(BstError::UnknownFilterId(a)));
        // Ids are never reused.
        let c = s.create([1u64]).expect("create");
        assert!(c.raw() > b.raw());
    }

    #[test]
    fn mutations_bump_generations() {
        let s = store();
        let id = s.create(0..10u64).expect("create");
        assert_eq!(s.insert_keys(id, [100u64, 101]), Ok(1));
        assert_eq!(s.remove_keys(id, [0u64]), Ok(2));
        // No-op mutations (empty key iterators) do not bump.
        assert_eq!(s.insert_keys(id, std::iter::empty()), Ok(2));
        assert_eq!(s.remove_keys(id, std::iter::empty()), Ok(2));
        assert_eq!(s.generation(id), Ok(2));
        assert_eq!(s.contains_key(id, 100), Ok(true));
        assert_eq!(s.contains_key(id, 0), Ok(false));
        assert_eq!(s.contains_key(id, 5), Ok(true));
    }

    #[test]
    fn out_of_namespace_keys_rejected_atomically() {
        let s = store(); // namespace 100_000
        assert_eq!(
            s.create([5u64, 100_000]).unwrap_err(),
            BstError::KeyOutsideNamespace(100_000)
        );
        assert!(s.is_empty(), "failed create must not register anything");
        let id = s.create([5u64]).expect("create");
        assert_eq!(
            s.insert_keys(id, [6u64, 200_000]),
            Err(BstError::KeyOutsideNamespace(200_000))
        );
        // Atomic: the in-range key of the rejected batch was not applied.
        assert_eq!(s.contains_key(id, 6), Ok(false));
        assert_eq!(s.generation(id), Ok(0));
        assert_eq!(
            s.remove_keys(id, [100_000u64]),
            Err(BstError::KeyOutsideNamespace(100_000))
        );
        assert_eq!(s.generation(id), Ok(0));
    }

    #[test]
    fn snapshot_pairs_filter_with_generation() {
        let s = store();
        let id = s.create(0..20u64).expect("create");
        let (f0, g0) = s.snapshot(id).expect("snapshot");
        assert_eq!(g0, 0);
        assert!(f0.contains(5));
        assert!(s.snapshot_if_newer(id, g0).expect("check").is_none());
        s.remove_keys(id, [5u64]).expect("remove");
        let (f1, g1) = s
            .snapshot_if_newer(id, g0)
            .expect("check")
            .expect("newer snapshot");
        assert_eq!(g1, 1);
        assert!(!f1.contains(5));
        assert!(f1.contains(6));
    }

    #[test]
    fn unknown_ids_are_typed_errors() {
        let s = store();
        let ghost = FilterId::from_raw(99);
        assert_eq!(s.get(ghost).unwrap_err(), BstError::UnknownFilterId(ghost));
        assert_eq!(
            s.insert_keys(ghost, [1u64]),
            Err(BstError::UnknownFilterId(ghost))
        );
        assert_eq!(
            s.remove_keys(ghost, [1u64]),
            Err(BstError::UnknownFilterId(ghost))
        );
        assert_eq!(s.generation(ghost), Err(BstError::UnknownFilterId(ghost)));
    }

    #[test]
    fn byte_roundtrip_preserves_sets_ids_and_generations() {
        let s = store();
        let a = s.create(0..200u64).expect("create");
        let b = s.create((0..80u64).map(|i| i * 3)).expect("create");
        s.insert_keys(a, [500u64, 501]).expect("insert");
        s.remove_keys(a, 0..50u64).expect("remove");
        s.drop_set(b).expect("drop");
        let c = s.create([7u64, 8, 9]).expect("create");

        let mut buf = bytes::BytesMut::new();
        s.put_bytes(&mut buf);
        let mut slice: &[u8] = &buf;
        let back = BstStore::get_bytes(&mut slice, Arc::clone(&s.hasher), 100_000).expect("decode");
        assert!(slice.is_empty());
        assert_eq!(back.ids(), s.ids());
        assert_eq!(back.generation(a), s.generation(a));
        assert_eq!(back.generation(c), Ok(0));
        assert_eq!(
            back.counting(a).expect("counting").counter_bytes(),
            s.counting(a).expect("counting").counter_bytes()
        );
        // Restored sets share the store's single hasher allocation.
        assert!(Arc::ptr_eq(
            back.counting(a).expect("counting").hasher(),
            &s.hasher
        ));
        // Byte-determinism: re-encoding yields identical bytes.
        let mut buf2 = bytes::BytesMut::new();
        back.put_bytes(&mut buf2);
        assert_eq!(&buf[..], &buf2[..]);
        // Dropped id stays dropped, and id allocation continues past it.
        assert_eq!(back.get(b).unwrap_err(), BstError::UnknownFilterId(b));
        let d = back.create([1u64]).expect("create");
        assert!(d.raw() > c.raw());
    }

    #[test]
    fn decode_rejects_foreign_hashers_and_corruption() {
        let s = store();
        s.create(0..10u64).expect("create");
        let mut buf = bytes::BytesMut::new();
        s.put_bytes(&mut buf);
        // Wrong hash family on decode.
        let other = Arc::new(BloomHasher::new(HashKind::Murmur3, 3, 4096, 100_000, 8));
        let mut slice: &[u8] = &buf;
        assert_eq!(
            BstStore::get_bytes(&mut slice, other, 100_000).unwrap_err(),
            PersistError::Corrupt("stored set hash family differs from the tree's")
        );
        // Truncation.
        let mut short: &[u8] = &buf[..buf.len() - 10];
        assert!(BstStore::get_bytes(&mut short, Arc::clone(&s.hasher), 100_000).is_err());
    }
}
