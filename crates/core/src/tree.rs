//! The BloomSampleTree (Definition 5.1): a complete binary tree over the
//! namespace with one Bloom filter per node, level `i` partitioning the
//! namespace into `2^i` equal ranges, every filter sharing the query
//! filters' `(m, H)`.
//!
//! Construction inserts each namespace element into its leaf and builds
//! internal nodes as unions of their children — bit-identical to inserting
//! every covered element directly (because `B(A ∪ B) = B(A) | B(B)`, §3.1)
//! but `O(M·k + #nodes·m/64)` instead of `O(M·k·depth)`. Leaf construction
//! is parallelised with crossbeam scoped threads.

use std::ops::Range;
use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::BloomHasher;
use bst_bloom::params::TreePlan;

/// Node handle within a tree (index into the tree's arena).
pub type NodeId = u32;

/// Candidate elements stored at a leaf, enumerated during the brute-force
/// membership phase of sampling/reconstruction.
pub enum LeafCandidates<'a> {
    /// A full namespace range (complete trees).
    Range(Range<u64>),
    /// Only the occupied ids (pruned trees).
    Slice(std::slice::Iter<'a, u64>),
}

impl Iterator for LeafCandidates<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        match self {
            LeafCandidates::Range(r) => r.next(),
            LeafCandidates::Slice(it) => it.next().copied(),
        }
    }
}

/// The navigation interface shared by the complete [`BloomSampleTree`] and
/// the occupancy-aware [`crate::pruned::PrunedBloomSampleTree`]; the
/// sampling and reconstruction algorithms are generic over it.
pub trait SampleTree {
    /// Root node, or `None` for a tree over an empty occupied set.
    fn root(&self) -> Option<NodeId>;
    /// Whether `node` is a leaf.
    fn is_leaf(&self, node: NodeId) -> bool;
    /// Children of an internal node (either may be absent in pruned trees).
    fn children(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>);
    /// The Bloom filter stored at `node`.
    fn filter(&self, node: NodeId) -> &BloomFilter;
    /// The namespace range `node` covers.
    fn range(&self, node: NodeId) -> Range<u64>;
    /// Candidate elements to test at a leaf.
    fn leaf_candidates(&self, node: NodeId) -> LeafCandidates<'_>;
    /// The shared hash family.
    fn hasher(&self) -> &Arc<BloomHasher>;

    /// Builds a query filter compatible with this tree from a key set.
    fn query_filter<I: IntoIterator<Item = u64>>(&self, keys: I) -> BloomFilter {
        BloomFilter::from_keys(Arc::clone(self.hasher()), keys)
    }
}

/// The complete BloomSampleTree of Definition 5.1.
///
/// `Debug` prints a structural summary, not the node contents.
pub struct BloomSampleTree {
    plan: TreePlan,
    hasher: Arc<BloomHasher>,
    /// Heap layout: node `i` has children `2i+1`, `2i+2`; `2^(depth+1) - 1`
    /// nodes in total.
    nodes: Vec<BloomFilter>,
    /// Range covered by each node, aligned with `nodes`.
    ranges: Vec<Range<u64>>,
    depth: u32,
}

impl std::fmt::Debug for BloomSampleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BloomSampleTree(M={}, m={}, k={}, depth={}, nodes={})",
            self.plan.namespace,
            self.plan.m,
            self.plan.k,
            self.depth,
            self.node_count()
        )
    }
}

/// Splits a parent range into its two child ranges (left gets the ceiling
/// half, keeping every leaf within one element of `M / 2^depth`).
fn split(r: &Range<u64>) -> (Range<u64>, Range<u64>) {
    let mid = r.start + (r.end - r.start).div_ceil(2);
    (r.start..mid, mid..r.end)
}

impl BloomSampleTree {
    /// Builds the tree sequentially.
    pub fn build(plan: &TreePlan) -> Self {
        Self::build_with_threads(plan, 1)
    }

    /// Builds the tree using `threads` worker threads for leaf insertion
    /// (0 means one thread per available CPU).
    pub fn build_with_threads(plan: &TreePlan, threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let depth = plan.depth;
        let hasher = Arc::new(plan.build_hasher());
        let node_count = (1usize << (depth + 1)) - 1;

        // Ranges for every node, top-down.
        let mut ranges: Vec<Range<u64>> = Vec::with_capacity(node_count);
        ranges.push(0..plan.namespace);
        for i in 0..node_count {
            if Self::is_internal_index(i, depth) {
                let (l, r) = split(&ranges[i]);
                debug_assert_eq!(ranges.len(), 2 * i + 1);
                ranges.push(l);
                ranges.push(r);
            }
        }

        // Leaf filters, in parallel chunks.
        let first_leaf = (1usize << depth) - 1;
        let leaf_count = 1usize << depth;
        let mut leaves: Vec<BloomFilter> = Vec::with_capacity(leaf_count);
        if threads <= 1 || leaf_count < 2 * threads {
            for li in 0..leaf_count {
                leaves.push(Self::build_leaf(&hasher, &ranges[first_leaf + li]));
            }
        } else {
            let chunk = leaf_count.div_ceil(threads);
            let mut parts: Vec<Vec<BloomFilter>> = Vec::with_capacity(threads);
            crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(leaf_count);
                    if lo >= hi {
                        break;
                    }
                    let hasher = &hasher;
                    let ranges = &ranges;
                    handles.push(scope.spawn(move |_| {
                        (lo..hi)
                            .map(|li| Self::build_leaf(hasher, &ranges[first_leaf + li]))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    // bst-lint: allow(L001) — a worker panic must propagate, not be swallowed
                    parts.push(h.join().expect("leaf builder panicked"));
                }
            })
            // bst-lint: allow(L001) — scope fails only if a child panicked; propagate
            .expect("crossbeam scope failed");
            for p in parts {
                leaves.extend(p);
            }
        }

        // Assemble: internal nodes as unions, bottom-up.
        let mut nodes: Vec<Option<BloomFilter>> = vec![None; node_count];
        for (li, leaf) in leaves.into_iter().enumerate() {
            nodes[first_leaf + li] = Some(leaf);
        }
        for i in (0..first_leaf).rev() {
            // bst-lint: allow(L001) — heap-array complete tree: every internal i has children
            let mut merged = nodes[2 * i + 1].clone().expect("child built");
            // bst-lint: allow(L001) — heap-array complete tree: every internal i has children
            merged.union_with(nodes[2 * i + 2].as_ref().expect("child built"));
            nodes[i] = Some(merged);
        }

        BloomSampleTree {
            plan: plan.clone(),
            hasher,
            // bst-lint: allow(L001) — the bottom-up pass above fills every slot
            nodes: nodes.into_iter().map(|n| n.expect("all built")).collect(),
            ranges,
            depth,
        }
    }

    fn build_leaf(hasher: &Arc<BloomHasher>, range: &Range<u64>) -> BloomFilter {
        let mut f = BloomFilter::new(Arc::clone(hasher));
        for x in range.clone() {
            f.insert(x);
        }
        f
    }

    #[inline]
    fn is_internal_index(i: usize, depth: u32) -> bool {
        i < (1usize << depth) - 1
    }

    /// The plan the tree was built from.
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// Tree depth (leaves at this level; 0 = root-only).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Namespace size `M`.
    pub fn namespace(&self) -> u64 {
        self.plan.namespace
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Actual heap bytes held by all node bit arrays.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.iter().map(|f| f.heap_bytes()).sum()
    }

    /// Serializes the tree (plan + all node bit arrays) into a compact
    /// binary buffer; see `persistence` module docs for the layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let words_per_node = self.plan.m.div_ceil(64);
        let mut buf = bytes::BytesMut::with_capacity(64 + self.nodes.len() * words_per_node * 8);
        buf.put_slice(b"BSTC");
        buf.put_u8(crate::persistence::VERSION);
        crate::persistence::put_plan(&mut buf, &self.plan);
        for node in &self.nodes {
            crate::persistence::put_words(&mut buf, node.bits().words());
        }
        buf.to_vec()
    }

    /// Reconstructs a tree serialized with [`Self::to_bytes`]. The hash
    /// family rebuilds deterministically from the stored plan.
    pub fn from_bytes(input: &[u8]) -> Result<Self, crate::persistence::PersistError> {
        use crate::persistence::{check_header, get_plan, get_words, PersistError};
        let mut input = input;
        check_header(&mut input, b"BSTC")?;
        let plan = get_plan(&mut input)?;
        if plan.depth > 40 {
            return Err(PersistError::Corrupt("implausible depth"));
        }
        let node_count = (1usize << (plan.depth + 1)) - 1;
        let hasher = Arc::new(plan.build_hasher());
        let words_per_node = plan.m.div_ceil(64);
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let words = get_words(&mut input, words_per_node)?;
            let bits = bst_bloom::bitvec::BitVec::from_words(words, plan.m);
            nodes.push(BloomFilter::from_parts(bits, Arc::clone(&hasher)));
        }
        // Recompute ranges exactly as build() does.
        let mut ranges: Vec<Range<u64>> = Vec::with_capacity(node_count);
        ranges.push(0..plan.namespace);
        for i in 0..node_count {
            if Self::is_internal_index(i, plan.depth) {
                let (l, r) = split(&ranges[i]);
                ranges.push(l);
                ranges.push(r);
            }
        }
        let depth = plan.depth;
        Ok(BloomSampleTree {
            plan,
            hasher,
            nodes,
            ranges,
            depth,
        })
    }
}

impl SampleTree for BloomSampleTree {
    fn root(&self) -> Option<NodeId> {
        Some(0)
    }

    fn is_leaf(&self, node: NodeId) -> bool {
        !Self::is_internal_index(node as usize, self.depth)
    }

    fn children(&self, node: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        if self.is_leaf(node) {
            (None, None)
        } else {
            (Some(2 * node + 1), Some(2 * node + 2))
        }
    }

    fn filter(&self, node: NodeId) -> &BloomFilter {
        &self.nodes[node as usize]
    }

    fn range(&self, node: NodeId) -> Range<u64> {
        self.ranges[node as usize].clone()
    }

    fn leaf_candidates(&self, node: NodeId) -> LeafCandidates<'_> {
        debug_assert!(self.is_leaf(node));
        LeafCandidates::Range(self.ranges[node as usize].clone())
    }

    fn hasher(&self) -> &Arc<BloomHasher> {
        &self.hasher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_bloom::hash::HashKind;

    fn small_plan() -> TreePlan {
        TreePlan {
            namespace: 1000,
            m: 2048,
            k: 3,
            kind: HashKind::Murmur3,
            seed: 7,
            depth: 4,
            leaf_capacity: 63,
            target_accuracy: 0.9,
        }
    }

    #[test]
    fn structure_is_complete() {
        let t = BloomSampleTree::build(&small_plan());
        assert_eq!(t.node_count(), (1 << 5) - 1);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.root(), Some(0));
        let (l, r) = t.children(0);
        assert_eq!((l, r), (Some(1), Some(2)));
        // Leaves have no children.
        let first_leaf = (1u32 << 4) - 1;
        assert!(t.is_leaf(first_leaf));
        assert_eq!(t.children(first_leaf), (None, None));
    }

    #[test]
    fn ranges_partition_each_level() {
        let t = BloomSampleTree::build(&small_plan());
        // Level by level, ranges tile [0, M).
        for level in 0..=4u32 {
            let start = (1usize << level) - 1;
            let count = 1usize << level;
            let mut expect = 0u64;
            for i in start..start + count {
                let r = t.range(i as NodeId);
                assert_eq!(r.start, expect, "level {level} node {i}");
                expect = r.end;
            }
            assert_eq!(expect, 1000, "level {level} must end at M");
        }
    }

    #[test]
    fn laminarity_parent_is_union_of_children() {
        let t = BloomSampleTree::build(&small_plan());
        for i in 0..t.node_count() / 2 {
            let (l, r) = t.children(i as NodeId);
            let mut u = t.filter(l.unwrap()).clone();
            u.union_with(t.filter(r.unwrap()));
            assert_eq!(
                u.bits(),
                t.filter(i as NodeId).bits(),
                "node {i} is not the union of its children"
            );
        }
    }

    #[test]
    fn every_node_contains_its_range() {
        let t = BloomSampleTree::build(&small_plan());
        for i in [0u32, 1, 2, 7, 15, 30] {
            let f = t.filter(i);
            for x in t.range(i) {
                assert!(f.contains(x), "node {i} missing element {x}");
            }
        }
    }

    #[test]
    fn parallel_build_is_identical() {
        let plan = small_plan();
        let seq = BloomSampleTree::build(&plan);
        let par = BloomSampleTree::build_with_threads(&plan, 4);
        for i in 0..seq.node_count() {
            assert_eq!(
                seq.filter(i as NodeId).bits(),
                par.filter(i as NodeId).bits(),
                "node {i} differs between sequential and parallel builds"
            );
        }
    }

    #[test]
    fn depth_zero_tree() {
        let mut plan = small_plan();
        plan.depth = 0;
        plan.leaf_capacity = 1000;
        let t = BloomSampleTree::build(&plan);
        assert_eq!(t.node_count(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.leaf_candidates(0).count(), 1000);
    }

    #[test]
    fn non_power_of_two_namespace() {
        let mut plan = small_plan();
        plan.namespace = 1001;
        let t = BloomSampleTree::build(&plan);
        // Leaf widths differ by at most 1... actually by at most
        // leaf_capacity bounds; the key invariant: they tile exactly.
        let first_leaf = (1usize << 4) - 1;
        let total: u64 = (first_leaf..t.node_count())
            .map(|i| {
                let r = t.range(i as NodeId);
                r.end - r.start
            })
            .sum();
        assert_eq!(total, 1001);
    }

    #[test]
    fn query_filter_is_compatible() {
        let t = BloomSampleTree::build(&small_plan());
        let q = t.query_filter([1u64, 2, 3]);
        assert!(q.compatible_with(t.filter(0)));
        assert!(q.contains(2));
    }

    #[test]
    fn memory_accounting_positive() {
        let t = BloomSampleTree::build(&small_plan());
        let expected = t.node_count() * 2048usize.div_ceil(64) * 8;
        assert_eq!(t.memory_bytes(), expected);
    }
}
