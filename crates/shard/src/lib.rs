#![forbid(unsafe_code)]
//! # bst-shard — the sharded, mutable sampling engine
//!
//! One [`bst_core::system::BstSystem`] holds one tree and one store; at
//! "millions of users" scale that single tree becomes the bottleneck —
//! every descent serializes on one allocation, every occupancy write
//! blocks every read, and construction cost grows with the whole
//! namespace. Bloofi (Crainiceanu & Lemire) shows that collections of
//! Bloom filters scale by splitting them into independently searchable
//! units; [`ShardedBstSystem`] applies that to the BloomSampleTree.
//!
//! ## Shape
//!
//! The namespace `[0, M)` is split into `S` contiguous shards; shard `s`
//! owns `[boundaries[s], boundaries[s+1])` and is a full `BstSystem` of
//! its own — a pruned [`bst_core::backend::TreeBackend`] materialised
//! only over the shard's occupied ids, plus its own
//! [`bst_core::store::BstStore`]. All shards share one `TreePlan`
//! (namespace, `m`, `k`, hash family, seed), so **one query Bloom filter
//! is valid against every shard** — no key translation, no re-hashing —
//! and per-shard answers concatenate into globally sorted results.
//!
//! ## Scatter-gather
//!
//! * **Sampling** ([`ShardQuery::sample`]): each shard reports its
//!   **live-leaf weight** for the query filter — the exact number of
//!   matching candidates over its live leaves
//!   ([`bst_core::query::Query::live_weight`], memo-amortized). A shard
//!   is drawn with probability proportional to its weight, then sampled
//!   internally; with exact weights the merged distribution equals a
//!   single tree's (chi²-checked in `tests/e2e_shard.rs`).
//! * **Reconstruction** ([`ShardQuery::reconstruct`]): shard answers are
//!   disjoint and range-ordered, so gathering is concatenation.
//! * **Batches** ([`ShardedBstSystem::query_batch`]): a two-phase
//!   scatter over a crossbeam worker pool — weigh every (shard, filter)
//!   cell, pick one shard per filter ∝ the weights, sample only the
//!   chosen cells. Phase 1 is backed by a **persistent engine-level
//!   weight cache** ([`weight_cache`]): repeated batches over an
//!   unchanged filter population skip the weighing entirely, and
//!   occupancy churn repairs cached weights through the mutation
//!   journal instead of discarding them. Per-(shard, filter) RNG
//!   seeding keeps results deterministic for a fixed seed regardless of
//!   thread count — and bit-identical with the cache on or bypassed.
//!
//! ## Mutability
//!
//! Both evolution paths of the underlying system work per shard and are
//! routed automatically: stored-set churn (`insert_keys`/`remove_keys`,
//! set generations) and namespace-occupancy churn
//! (`insert_occupied`/`remove_occupied`, tree generations). Open
//! [`ShardQuery`] handles are built from per-shard
//! [`bst_core::query::Query`] handles, so both staleness protocols apply
//! unchanged — a warm sharded handle answers exactly like a cold one.
//!
//! **Isolation caveat:** per-shard operations are individually
//! consistent, but there is no cross-shard snapshot isolation — a
//! reader racing a multi-shard mutation (`insert_keys` spanning two
//! shards, say) can observe one shard before the write and another
//! after it, a torn state a single-tree system cannot produce.
//! Single-writer or per-span-writer deployments (and everything
//! single-threaded) are unaffected; readers always see *some* prefix of
//! each shard's mutation history, never corrupt data.
//!
//! ```
//! use bst_shard::ShardedBstSystem;
//!
//! // 4 shards over a 40k namespace, every id occupied.
//! let system = ShardedBstSystem::builder(40_000).shards(4).build();
//! let community = system.create((0..400u64).map(|i| i * 97 % 40_000)).unwrap();
//! let query = system.query_id(community).unwrap();
//! let mut rng = rand::thread_rng();
//! let member = query.sample(&mut rng).unwrap();
//! assert!(system.get(community).unwrap().contains(member));
//!
//! // Mutations route to the owning shard; the open handle stays honest.
//! system.insert_keys(community, [39_999u64]).unwrap();
//! assert!(query.reconstruct().unwrap().binary_search(&39_999).is_ok());
//!
//! // The whole sharded engine snapshots to bytes.
//! let restored = ShardedBstSystem::from_bytes(&system.to_bytes()).unwrap();
//! assert_eq!(
//!     restored.query_id(community).unwrap().reconstruct().unwrap(),
//!     query.reconstruct().unwrap(),
//! );
//! ```

#![warn(missing_docs)]

pub mod durable;
pub mod query;
pub mod system;
pub mod weight_cache;

pub use durable::{DurableBstSystem, DurableConfig, DurableError};
pub use query::ShardQuery;
pub use system::{shard_boundaries, BatchObs, ShardedBstSystem, ShardedBstSystemBuilder};
pub use weight_cache::{filter_content_hash, CachedWeight, WeightCacheStats};
