//! The engine-level persistent weight cache behind
//! [`crate::system::ShardedBstSystem::query_batch`].
//!
//! PR 4's two-phase batch scatter left cold batches dominated by phase 1:
//! every batch over the same filter population re-weighs every
//! (shard, slot) cell from scratch, even though nothing changed between
//! batches. This cache makes those weights **persistent at the engine
//! level** — the "one tree, many filters, repeated operations" asymmetry
//! the paper's BSTSample design exploits, applied to the batch path, with
//! Bloofi's live per-filter metadata as the reference point.
//!
//! ## Shape
//!
//! A concurrent map from batch slot key to per-shard live-weight cells:
//!
//! * **Stored** sets are keyed by their sharded [`FilterId`] raw value
//!   (sharded ids are never reused, so a raw id names one set forever).
//! * **Ad-hoc** filters are *interned* by content hash — the entry keeps
//!   a clone of the filter, both as the collision guard (a 64-bit hash
//!   can collide; filter bits cannot) and as the input to journal repair.
//!   The interned side is bounded (`ADHOC_CAP` = 1024 entries, FIFO
//!   eviction).
//!
//! Each cell carries the weight outcome plus the `(store set-generation,
//! tree generation)` stamp pair it was computed at — the same two stamp
//! kinds that invalidate a [`crate::query::ShardQuery`]'s handle-level
//! cache. **Mutations never touch the cache** (no write-path cost beyond
//! the generation bumps that already happen); staleness is discovered
//! lazily at probe time by comparing stamps against the live generations:
//!
//! * both stamps current → **hit**, the weight is served as-is;
//! * tree stamp lags but the mutation journal covers the gap → the
//!   weight is **repaired** by the O(k)-per-mutation delta
//!   ([`bst_core::system::BstSystem::repair_live_weight`]) and re-served;
//! * set stamp moved, or the journal fell behind → **miss**, the cell is
//!   re-weighed and overwritten.
//!
//! Overwrites are stamp-monotonic (a cell is only replaced by one whose
//! stamps are at least as new), so a concurrent fill can never regress a
//! cell — `tests/stress_weights.rs` hammers this under parallel mutators.
//! Serving correctness never depends on the overwrite policy, though:
//! every probe re-validates stamps against the current generations, so a
//! superseded weight is structurally unservable.
//!
//! Cached weights are pure functions of `(tree, filter)` and equal what a
//! fresh weighing would produce, so batch *outputs* are bit-identical
//! with the cache enabled or bypassed (pinned in `tests/e2e_shard.rs`
//! and the crate proptests); only `OpStats` differ, since cache hits
//! perform no filter operations.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use bst_bloom::filter::BloomFilter;
use bst_core::error::BstError;
use bst_core::store::FilterId;
use bst_core::system::BstSystem;
use bst_obs::Counter;
use parking_lot::RwLock;

/// Bound on distinct interned ad-hoc filters (FIFO eviction beyond it).
/// Stored-set entries are bounded by the registry and are not capped.
pub(crate) const ADHOC_CAP: usize = 1024;

/// How one batch slot is keyed in the cache.
pub(crate) enum SlotKey<'a> {
    /// A registered sharded set: the sharded id's raw value plus the
    /// per-shard backing ids (for set-generation checks and projection).
    Stored {
        /// Raw sharded id (never reused by the registry).
        raw: u64,
        /// Per-shard backing store ids, shard order.
        fids: &'a [FilterId],
    },
    /// A detached filter, interned by content hash.
    Adhoc {
        /// Content hash of the filter (see [`filter_content_hash`]).
        hash: u64,
        /// The filter itself (cloned into the cache on first fill).
        filter: &'a BloomFilter,
    },
}

/// Content hash of a filter: FNV-1a over the parameterization and the
/// raw bit words. Collisions are guarded by comparing the interned
/// filter's bits on every probe, so the hash only has to be a good map
/// key, not a unique identity. Public so layers holding their own
/// per-filter caches (e.g. `bst-server` session handle caches) can key
/// them consistently with the engine's weight cache — callers must keep
/// the same collision-guard discipline (the hash is a map key, not an
/// identity).
pub fn filter_content_hash(filter: &BloomFilter) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| h = (h ^ x).wrapping_mul(PRIME);
    mix(filter.m() as u64);
    mix(filter.k() as u64);
    for &w in filter.bits().words() {
        mix(w);
    }
    h
}

/// One cached (filter, shard) weight cell: the outcome plus the stamps
/// it was computed at. Only *soft* outcomes are cached (`Ok(weight)`,
/// `EmptyFilter`, `EmptyTree`); hard errors carry no meaningful stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedWeight {
    /// The weight outcome a probe at matching stamps would serve.
    pub outcome: Result<u64, BstError>,
    /// Store set-generation of the shard's backing set when computed
    /// (constant 0 for ad-hoc filters, which have no backing set).
    pub set_generation: u64,
    /// The shard's tree generation when computed.
    pub tree_generation: u64,
}

impl CachedWeight {
    /// Stamp-monotonic overwrite rule: a cell may only be replaced by
    /// one computed at stamps at least as new in *both* dimensions.
    fn supersedes(&self, old: &CachedWeight) -> bool {
        self.set_generation >= old.set_generation && self.tree_generation >= old.tree_generation
    }
}

/// Effectiveness counters since construction or the last clear
/// (clearing — including the one `set_enabled(false)` performs — resets
/// them; a bypassed cache counts nothing at all).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WeightCacheStats {
    /// Cells served straight from the cache (stamps current).
    pub hits: u64,
    /// Probed cells with no servable entry: absent, or stale beyond
    /// repair. Each miss dispatches one weighing walk.
    pub misses: u64,
    /// Cells whose tree stamp lagged but were brought current by a
    /// journal-replay delta instead of a re-weigh (counted as hits too).
    pub repairs: u64,
}

/// A stored-set entry: one optional cell per shard.
struct StoredEntry {
    cells: Vec<Option<CachedWeight>>,
}

/// The stored side: live entries plus the tombstones of retired ids.
/// Both live under one lock so a write-back racing `remove_stored`
/// cannot resurrect a dropped set's entry.
#[derive(Default)]
struct StoredSide {
    map: HashMap<u64, StoredEntry>,
    /// Raw ids retired by `drop_set` — never probed again (sharded ids
    /// are not reused), so `fill` must not re-create their entries. One
    /// `u64` per set ever dropped, far below the S-cell entries it
    /// prevents from leaking.
    retired: HashSet<u64>,
}

/// An interned ad-hoc entry: the filter (collision guard + repair
/// input) plus one optional cell per shard.
struct AdhocEntry {
    filter: BloomFilter,
    cells: Vec<Option<CachedWeight>>,
}

struct AdhocSide {
    map: HashMap<u64, AdhocEntry>,
    /// Insertion order for FIFO eviction at [`ADHOC_CAP`].
    order: VecDeque<u64>,
}

/// The persistent per-(filter, shard) weight cache of a
/// [`crate::system::ShardedBstSystem`]. See the module docs for the
/// protocol; all methods are engine-internal.
pub(crate) struct WeightCache {
    shards: usize,
    enabled: AtomicBool,
    stored: RwLock<StoredSide>,
    adhoc: RwLock<AdhocSide>,
    /// Effectiveness counters as `bst-obs` handles, so a serving layer
    /// can register clones on its metrics registry and scrape them
    /// without an extra copy (recording cost is identical: one relaxed
    /// `fetch_add`).
    hits: Counter,
    misses: Counter,
    repairs: Counter,
}

impl WeightCache {
    pub(crate) fn new(shards: usize, enabled: bool) -> Self {
        WeightCache {
            shards,
            enabled: AtomicBool::new(enabled),
            stored: RwLock::new(StoredSide::default()),
            adhoc: RwLock::new(AdhocSide {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            repairs: Counter::new(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Runtime toggle; disabling also clears (a bypassed cache must not
    /// serve pre-toggle state when re-enabled later).
    pub(crate) fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
        if !enabled {
            self.clear();
        }
    }

    /// Empties the cache and resets the effectiveness counters.
    /// Retired-id tombstones survive: a dropped set stays dropped.
    pub(crate) fn clear(&self) {
        self.stored.write().map.clear();
        let mut adhoc = self.adhoc.write();
        adhoc.map.clear();
        adhoc.order.clear();
        drop(adhoc);
        self.hits.reset();
        self.misses.reset();
        self.repairs.reset();
    }

    /// Retires a dropped stored set: removes its entry and tombstones
    /// the raw id, so an in-flight batch's write-back (which resolved
    /// the registry before the drop) cannot resurrect an unreachable
    /// entry. Garbage collection, not invalidation — a retired raw id
    /// can never be probed again anyway.
    pub(crate) fn remove_stored(&self, raw: u64) {
        let mut stored = self.stored.write();
        stored.map.remove(&raw);
        stored.retired.insert(raw);
    }

    pub(crate) fn stats(&self) -> WeightCacheStats {
        WeightCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            repairs: self.repairs.get(),
        }
    }

    /// Clones of the effectiveness counter handles `(hits, misses,
    /// repairs)` — for registration on a metrics registry. Note a
    /// [`Self::clear`] resets them through any registered clone (shared
    /// cells), so scrape-time callbacks over [`Self::stats`] and
    /// registered handles always agree.
    pub(crate) fn counters(&self) -> (Counter, Counter, Counter) {
        (self.hits.clone(), self.misses.clone(), self.repairs.clone())
    }

    /// Introspection: the cached per-shard cells for a stored id, if an
    /// entry exists.
    pub(crate) fn stored_cells(&self, raw: u64) -> Option<Vec<Option<CachedWeight>>> {
        self.stored.read().map.get(&raw).map(|e| e.cells.clone())
    }

    /// Introspection: the cached per-shard cells for an ad-hoc filter,
    /// if it is interned.
    pub(crate) fn adhoc_cells(&self, filter: &BloomFilter) -> Option<Vec<Option<CachedWeight>>> {
        let hash = filter_content_hash(filter);
        let adhoc = self.adhoc.read();
        let entry = adhoc.map.get(&hash)?;
        (entry.filter.bits() == filter.bits() && entry.filter.compatible_with(filter))
            .then(|| entry.cells.clone())
    }

    /// Probes one whole slot: every shard's cell in one pass, with the
    /// entry lookup (and, for ad-hoc keys, the collision guard's bit
    /// comparison) paid **once per slot** rather than once per cell.
    /// `out[shard] = Some(outcome)` means phase 1 can skip weighing that
    /// cell — the outcome is current, possibly after a journal repair;
    /// `None` is a miss the caller must weigh and [`Self::fill`].
    ///
    /// Repairs run inline on the calling thread: each is bounded by the
    /// journal horizon (≤ 256 `±contains` deltas, plus one O(m)
    /// projection for stored keys) — orders of magnitude under the
    /// counting walk a miss costs, so shipping them to the worker pool
    /// would buy little (measured in `results/weight_cache.md`,
    /// "warm + repair").
    pub(crate) fn probe_slot(
        &self,
        shards: &[BstSystem],
        key: &SlotKey<'_>,
    ) -> Vec<Option<Result<u64, BstError>>> {
        let mut out = vec![None; shards.len()];
        if !self.enabled() {
            return out;
        }
        let cells: Option<Vec<Option<CachedWeight>>> = match key {
            SlotKey::Adhoc { hash, filter } => {
                let adhoc = self.adhoc.read();
                adhoc.map.get(hash).and_then(|entry| {
                    // Collision guard: the interned filter must be bit-
                    // identical (and parameter-identical) to the probing
                    // one. One comparison covers all S cells.
                    (entry.filter.bits() == filter.bits() && entry.filter.compatible_with(filter))
                        .then(|| entry.cells.clone())
                })
            }
            SlotKey::Stored { raw, .. } => self.stored.read().map.get(raw).map(|e| e.cells.clone()),
        };
        if let Some(cells) = cells {
            for (shard, (cell, sys)) in cells.into_iter().zip(shards).enumerate() {
                out[shard] = cell.and_then(|cell| self.serve(sys, shard, key, cell));
            }
        }
        for served in &out {
            match served {
                Some(_) => self.hits.inc(),
                None => self.misses.inc(),
            };
        }
        out
    }

    /// Revalidates one cached cell against the shard's current
    /// generations: serve on matching stamps, repair a lagging Ok weight
    /// through the mutation journal, miss otherwise.
    fn serve(
        &self,
        sys: &BstSystem,
        shard: usize,
        key: &SlotKey<'_>,
        cell: CachedWeight,
    ) -> Option<Result<u64, BstError>> {
        // Set-generation check first (a dropped backing set is a miss:
        // the weighing walk reports the typed error through the normal
        // path); ad-hoc filters have no set, stamped constant 0.
        let set_now = match key {
            SlotKey::Adhoc { .. } => 0,
            SlotKey::Stored { fids, .. } => sys.filters().generation(fids[shard]).ok()?,
        };
        if cell.set_generation != set_now {
            return None;
        }
        let tree_now = sys.tree().generation();
        if cell.tree_generation == tree_now {
            return Some(cell.outcome);
        }
        // A lagging Ok weight may be repairable through the journal; any
        // other staleness (including stale soft errors — `EmptyTree` can
        // flip once occupancy arrives) is a miss.
        let weight = match cell.outcome {
            Ok(w) if cell.tree_generation < tree_now => w,
            _ => return None,
        };
        // The repair delta needs the filter: the interned clone for
        // ad-hoc keys; for stored keys the projection — O(m), far
        // cheaper than the counting walk it avoids — which must reflect
        // the stamped set generation exactly, or the repaired weight
        // would mix two set states.
        let (repaired, tree_generation) = match key {
            SlotKey::Adhoc { filter, .. } => {
                sys.repair_live_weight(filter, cell.tree_generation, weight)?
            }
            SlotKey::Stored { fids, .. } => {
                let (filter, generation) = sys.filters().snapshot(fids[shard]).ok()?;
                if generation != cell.set_generation {
                    return None;
                }
                sys.repair_live_weight(&filter, cell.tree_generation, weight)?
            }
        };
        self.repairs.inc();
        self.fill(
            shard,
            key,
            CachedWeight {
                outcome: Ok(repaired),
                set_generation: cell.set_generation,
                tree_generation,
            },
        );
        Some(Ok(repaired))
    }

    /// Records a freshly weighed (or just-repaired) cell. Only soft
    /// outcomes are cacheable; the weighing caller filters hard errors
    /// out. Overwrites are stamp-monotonic
    /// ([`CachedWeight::supersedes`]). The enabled flag is re-checked
    /// under the write lock: `set_enabled(false)` clears under that same
    /// lock, so an in-flight write-back can never repopulate a cache the
    /// toggle just emptied.
    pub(crate) fn fill(&self, shard: usize, key: &SlotKey<'_>, cell: CachedWeight) {
        match key {
            SlotKey::Stored { raw, .. } => {
                let mut stored = self.stored.write();
                if !self.enabled() || stored.retired.contains(raw) {
                    return;
                }
                let entry = stored.map.entry(*raw).or_insert_with(|| StoredEntry {
                    cells: vec![None; self.shards],
                });
                merge_cell(&mut entry.cells[shard], cell);
            }
            SlotKey::Adhoc { hash, filter } => {
                let mut adhoc = self.adhoc.write();
                if !self.enabled() {
                    return;
                }
                match adhoc.map.get_mut(hash) {
                    Some(entry)
                        if entry.filter.bits() == filter.bits()
                            && entry.filter.compatible_with(filter) =>
                    {
                        merge_cell(&mut entry.cells[shard], cell);
                    }
                    // A hash collision with a different interned filter:
                    // keep the resident (evicting on collision would let
                    // two filters thrash one slot).
                    Some(_) => {}
                    None => {
                        while adhoc.order.len() >= ADHOC_CAP {
                            match adhoc.order.pop_front() {
                                Some(evict) => {
                                    adhoc.map.remove(&evict);
                                }
                                None => break,
                            }
                        }
                        let mut cells = vec![None; self.shards];
                        cells[shard] = Some(cell);
                        adhoc.map.insert(
                            *hash,
                            AdhocEntry {
                                filter: (*filter).clone(),
                                cells,
                            },
                        );
                        adhoc.order.push_back(*hash);
                    }
                }
            }
        }
    }
}

/// Applies the stamp-monotonic overwrite rule to one cell slot.
fn merge_cell(slot: &mut Option<CachedWeight>, fresh: CachedWeight) {
    match slot {
        Some(old) if !fresh.supersedes(old) => {}
        _ => *slot = Some(fresh),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bst_core::system::BstSystem;

    /// Single-shard probe shorthand for the unit tests.
    fn probe(
        cache: &WeightCache,
        sys: &BstSystem,
        key: &SlotKey<'_>,
    ) -> Option<Result<u64, BstError>> {
        cache.probe_slot(std::slice::from_ref(sys), key)[0]
    }

    fn system() -> BstSystem {
        BstSystem::builder(4_096)
            .expected_set_size(100)
            .seed(7)
            .pruned((0..4_096u64).step_by(2))
            .build()
    }

    #[test]
    fn content_hash_tracks_bits() {
        let sys = system();
        let a = sys.store([2u64, 4, 8]);
        let b = sys.store([2u64, 4, 8]);
        let c = sys.store([2u64, 4, 10]);
        assert_eq!(filter_content_hash(&a), filter_content_hash(&b));
        assert_ne!(filter_content_hash(&a), filter_content_hash(&c));
    }

    #[test]
    fn probe_miss_fill_hit_roundtrip() {
        let sys = system();
        let cache = WeightCache::new(1, true);
        let filter = sys.store((0..100u64).map(|i| i * 2 % 4_096));
        let key = SlotKey::Adhoc {
            hash: filter_content_hash(&filter),
            filter: &filter,
        };
        assert_eq!(probe(&cache, &sys, &key), None, "cold probe misses");
        let (outcome, tree_generation) = sys.live_weight_stamped(&filter);
        cache.fill(
            0,
            &key,
            CachedWeight {
                outcome,
                set_generation: 0,
                tree_generation,
            },
        );
        assert_eq!(probe(&cache, &sys, &key), Some(outcome), "warm probe hits");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.repairs), (1, 1, 0));
    }

    #[test]
    fn tree_mutation_repairs_instead_of_missing() {
        let sys = system();
        let cache = WeightCache::new(1, true);
        let keys: Vec<u64> = (0..100u64).map(|i| i * 2 % 4_096).collect();
        let filter = sys.store(keys.iter().copied().chain([1u64]));
        let key = SlotKey::Adhoc {
            hash: filter_content_hash(&filter),
            filter: &filter,
        };
        let (outcome, tree_generation) = sys.live_weight_stamped(&filter);
        let w0 = outcome.expect("weight");
        cache.fill(
            0,
            &key,
            CachedWeight {
                outcome,
                set_generation: 0,
                tree_generation,
            },
        );
        // Occupy id 1 (odd, so previously unoccupied; the filter holds
        // it): the cached weight lags by one journal entry.
        sys.insert_occupied(1).expect("insert");
        let served = probe(&cache, &sys, &key).expect("repairable");
        assert_eq!(served, Ok(w0 + 1), "repair applies the +contains delta");
        assert_eq!(served, Ok(sys.live_weight(&filter).expect("recount")));
        assert_eq!(cache.stats().repairs, 1);
        // The repaired cell is now current: the next probe is a pure hit.
        assert_eq!(probe(&cache, &sys, &key), Some(Ok(w0 + 1)));
        assert_eq!(cache.stats().repairs, 1);
    }

    #[test]
    fn disabled_cache_never_serves() {
        let sys = system();
        let cache = WeightCache::new(1, true);
        let filter = sys.store([2u64, 4, 6]);
        let key = SlotKey::Adhoc {
            hash: filter_content_hash(&filter),
            filter: &filter,
        };
        let (outcome, tree_generation) = sys.live_weight_stamped(&filter);
        cache.fill(
            0,
            &key,
            CachedWeight {
                outcome,
                set_generation: 0,
                tree_generation,
            },
        );
        cache.set_enabled(false);
        assert_eq!(probe(&cache, &sys, &key), None, "bypassed");
        cache.set_enabled(true);
        assert_eq!(
            probe(&cache, &sys, &key),
            None,
            "disabling cleared the state"
        );
    }

    #[test]
    fn late_fill_cannot_resurrect_a_retired_stored_entry() {
        let cache = WeightCache::new(2, true);
        let fids = [FilterId::from_raw(0), FilterId::from_raw(1)];
        let key = SlotKey::Stored {
            raw: 9,
            fids: &fids,
        };
        let cell = CachedWeight {
            outcome: Ok(3),
            set_generation: 0,
            tree_generation: 0,
        };
        cache.fill(0, &key, cell);
        assert!(cache.stored_cells(9).is_some());
        cache.remove_stored(9);
        assert!(cache.stored_cells(9).is_none());
        // A write-back from an in-flight batch that resolved the id
        // before the drop arrives late: the tombstone must reject it,
        // or the unreachable entry would leak for the engine's lifetime.
        cache.fill(1, &key, cell);
        assert!(cache.stored_cells(9).is_none(), "retired id resurrected");
        // Clearing keeps the tombstone: a dropped set stays dropped.
        cache.clear();
        cache.fill(1, &key, cell);
        assert!(cache.stored_cells(9).is_none());
    }

    #[test]
    fn adhoc_interning_is_bounded_fifo() {
        let sys = system();
        let cache = WeightCache::new(1, true);
        let cell = CachedWeight {
            outcome: Ok(1),
            set_generation: 0,
            tree_generation: 0,
        };
        let filters: Vec<BloomFilter> = (0..ADHOC_CAP as u64 + 8)
            .map(|i| sys.store([2 * (i % 2_000), 2 * (i % 2_000) + 2]))
            .collect();
        for f in &filters {
            cache.fill(
                0,
                &SlotKey::Adhoc {
                    hash: filter_content_hash(f),
                    filter: f,
                },
                cell,
            );
        }
        let interned = cache.adhoc.read().map.len();
        assert!(interned <= ADHOC_CAP, "cap enforced: {interned}");
        assert_eq!(cache.adhoc.read().order.len(), interned);
        // The earliest fills were evicted; the latest survive.
        assert!(cache.adhoc_cells(filters.last().expect("some")).is_some());
    }

    #[test]
    fn merge_is_stamp_monotonic() {
        let newer = CachedWeight {
            outcome: Ok(5),
            set_generation: 2,
            tree_generation: 3,
        };
        let older = CachedWeight {
            outcome: Ok(4),
            set_generation: 1,
            tree_generation: 3,
        };
        let incomparable = CachedWeight {
            outcome: Ok(6),
            set_generation: 3,
            tree_generation: 2,
        };
        let mut slot = Some(newer);
        merge_cell(&mut slot, older);
        assert_eq!(slot, Some(newer), "older stamps never overwrite");
        merge_cell(&mut slot, incomparable);
        assert_eq!(slot, Some(newer), "incomparable stamps keep the resident");
        merge_cell(
            &mut slot,
            CachedWeight {
                outcome: Ok(7),
                set_generation: 2,
                tree_generation: 4,
            },
        );
        assert_eq!(slot.expect("cell").outcome, Ok(7), "newer stamps replace");
    }
}
