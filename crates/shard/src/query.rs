//! [`ShardQuery`]: the scatter-gather query handle.

use std::ops::Range;

use bst_core::error::BstError;
use bst_core::metrics::OpStats;
use bst_core::query::Query;
use bst_core::store::FilterId;
use parking_lot::Mutex;
use rand::Rng;

/// One shard's cached live-leaf weight, stamped with the generations it
/// was computed at: valid while the shard handle still carries the same
/// stamps *and* the store/tree have not moved past them.
#[derive(Clone, Copy)]
struct CachedWeight {
    outcome: Result<u64, BstError>,
    set_generation: u64,
    tree_generation: u64,
}

/// A query handle spanning every shard of a
/// [`crate::system::ShardedBstSystem`]: one per-shard
/// [`bst_core::query::Query`] each, so descent state accumulates and
/// invalidates per shard (store generations *and* tree generations), and
/// the scatter-gather algebra lives here.
///
/// Uniformity: [`Self::sample`] draws a shard with probability
/// proportional to its **live-leaf weight** — the exact count of
/// elements the shard would reconstruct for this filter — then samples
/// inside the shard. With exact weights the merged distribution equals a
/// single tree's over the same positives (pinned by the `bst-stats`
/// conformance harness in `tests/e2e_shard.rs`). Weights come from
/// [`bst_core::query::Query::live_weight`], which is **maintained** in
/// the handle's memo: O(1) when warm, and after occupancy churn the
/// handle replays the tree's mutation journal — O(depth) memo repair
/// plus an O(k) count delta per mutation under sound reconstruction —
/// instead of recounting the shard; set churn still re-projects and
/// recounts on the next call.
pub struct ShardQuery {
    /// The sharded id this handle reads (`None` for detached filters).
    id: Option<FilterId>,
    /// `S + 1` ascending boundaries (for range clipping).
    boundaries: Vec<u64>,
    /// One core handle per shard, shard order.
    handles: Vec<Query>,
    /// Per-shard weight cache: a warm sample costs a staleness check per
    /// shard instead of a per-shard counting walk.
    weight_cache: Mutex<Vec<Option<CachedWeight>>>,
}

impl std::fmt::Debug for ShardQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardQuery(id={:?}, shards={})",
            self.id,
            self.handles.len()
        )
    }
}

impl ShardQuery {
    pub(crate) fn new(id: Option<FilterId>, boundaries: Vec<u64>, handles: Vec<Query>) -> Self {
        let weight_cache = Mutex::new(vec![None; handles.len()]);
        ShardQuery {
            id,
            boundaries,
            handles,
            weight_cache,
        }
    }

    /// The sharded store id this handle reads, for handles opened with
    /// [`crate::system::ShardedBstSystem::query_id`]; `None` for
    /// detached handles.
    pub fn filter_id(&self) -> Option<FilterId> {
        self.id
    }

    /// The per-shard core handles, shard order (for introspection).
    pub fn shard_handles(&self) -> &[Query] {
        &self.handles
    }

    /// Per-shard live-leaf weights for the current filter/tree state,
    /// with empty per-shard projections and empty shard trees counted as
    /// 0. The second value is `Some(error)` when **no** shard produced a
    /// usable evaluation, classified the way a single-tree system would:
    /// `EmptyTree` only when **every** shard's tree is empty (the engine
    /// holds no occupancy at all — a single tree would have no root),
    /// `EmptyFilter` otherwise (some tree exists, so the filter side is
    /// what failed). This is the one copy of the soft-error merge
    /// policy: `reconstruct`/`reconstruct_range` delegate to it, and the
    /// batch gather's `row_error` mirrors it cell-wise.
    fn weights(&self) -> Result<(Vec<u64>, Option<BstError>), BstError> {
        let mut cache = self.weight_cache.lock();
        let mut weights = Vec::with_capacity(self.handles.len());
        let mut saw_ok = false;
        let mut empty_trees = 0usize;
        for (slot, handle) in cache.iter_mut().zip(&self.handles) {
            // A cached weight is reusable only while the handle still
            // carries the stamps it was computed at AND nothing has moved
            // past them (staleness re-checks the store and the tree in
            // one lock acquisition).
            let cached = match slot {
                Some(c) => {
                    let (set_gen, tree_gen, stale) = handle.staleness()?;
                    (c.set_generation == set_gen && c.tree_generation == tree_gen && !stale)
                        .then_some(c.outcome)
                }
                None => None,
            };
            let outcome = match cached {
                Some(outcome) => outcome,
                None => {
                    // The stamps come from live_weight's own state lock,
                    // not re-read afterwards: a concurrent operation on
                    // this handle can advance its stamps between the
                    // computation and this point, and caching an old
                    // weight under new stamps would pin it forever.
                    let (outcome, set_generation, tree_generation) = handle.live_weight_stamped();
                    match outcome {
                        Ok(_) | Err(BstError::EmptyFilter) | Err(BstError::EmptyTree) => {
                            *slot = Some(CachedWeight {
                                outcome,
                                set_generation,
                                tree_generation,
                            });
                        }
                        // Hard errors propagate below and are never
                        // cached (their stamps are not meaningful).
                        Err(_) => {}
                    }
                    outcome
                }
            };
            match outcome {
                Ok(w) => {
                    saw_ok = true;
                    weights.push(w);
                }
                Err(BstError::EmptyFilter) => weights.push(0),
                Err(BstError::EmptyTree) => {
                    empty_trees += 1;
                    weights.push(0);
                }
                Err(e) => return Err(e),
            }
        }
        let merged_error = if saw_ok {
            None
        } else if empty_trees == self.handles.len() {
            Some(BstError::EmptyTree)
        } else {
            Some(BstError::EmptyFilter)
        };
        Ok((weights, merged_error))
    }

    /// The total live-leaf weight across shards: exactly the number of
    /// elements [`Self::reconstruct`] would return.
    pub fn live_weight(&self) -> Result<u64, BstError> {
        let (weights, merged_error) = self.weights()?;
        if let Some(e) = merged_error {
            return Err(e);
        }
        Ok(weights.iter().sum())
    }

    /// Draws one near-uniform sample from the stored span: a shard
    /// proportional to its live-leaf weight, then a sample within it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<u64, BstError> {
        let (weights, merged_error) = self.weights()?;
        if let Some(e) = merged_error {
            return Err(e);
        }
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return Err(BstError::NoLiveLeaf);
        }
        let mut pick = rng.gen_range(0..total);
        let mut fallback = None;
        for (handle, &w) in self.handles.iter().zip(&weights) {
            if pick < w {
                return handle.sample(rng);
            }
            if w > 0 {
                fallback = Some(handle);
            }
            pick -= w;
        }
        // pick < total guarantees some shard matched above; if weights
        // were raced to zero mid-iteration, fall back to the last live
        // shard rather than panicking on the serving path.
        match fallback {
            Some(handle) => handle.sample(rng),
            None => Err(BstError::NoLiveLeaf),
        }
    }

    /// Draws `r` samples, splitting the request across shards with
    /// successive binomial draws over the live-leaf weights (the §5.3
    /// multi-path split lifted one level up), then one per-shard
    /// `sample_many` each. Results are grouped by shard, not shuffled.
    /// May return fewer than `r` when shard-internal paths die on
    /// false-positive routes.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        r: usize,
        rng: &mut R,
    ) -> Result<Vec<u64>, BstError> {
        let (weights, merged_error) = self.weights()?;
        if let Some(e) = merged_error {
            return Err(e);
        }
        let total: u64 = weights.iter().sum();
        if total == 0 {
            return Err(BstError::NoLiveLeaf);
        }
        let mut out = Vec::with_capacity(r);
        let mut remaining = r;
        let mut weight_left = total;
        for (handle, &w) in self.handles.iter().zip(&weights) {
            if remaining == 0 || weight_left == 0 {
                break;
            }
            let take = if w == weight_left {
                remaining
            } else {
                bst_stats::binomial::sample_binomial(
                    rng,
                    remaining as u64,
                    w as f64 / weight_left as f64,
                ) as usize
            };
            weight_left -= w;
            if take > 0 {
                out.extend(handle.sample_many(take, rng)?);
                remaining -= take.min(remaining);
            }
        }
        Ok(out)
    }

    /// Reconstructs the stored span (`S ∪ S(B)` restricted to occupied
    /// ids), sorted ascending — per-shard answers are disjoint and
    /// range-ordered, so gathering is concatenation.
    pub fn reconstruct(&self) -> Result<Vec<u64>, BstError> {
        let mut out = Vec::new();
        let mut saw_ok = false;
        for handle in &self.handles {
            match handle.reconstruct() {
                Ok(part) => {
                    saw_ok = true;
                    out.extend(part);
                }
                Err(BstError::EmptyFilter) | Err(BstError::EmptyTree) => {}
                Err(e) => return Err(e),
            }
        }
        if !saw_ok {
            // No shard contributed: classify through the one merge
            // policy in `weights` (which also covers the transient case
            // where a mutation landed between the loops).
            if let (_, Some(e)) = self.weights()? {
                return Err(e);
            }
        }
        Ok(out)
    }

    /// Range-restricted reconstruction: shards disjoint from `window`
    /// are never consulted. An empty window yields `Ok(vec![])`.
    pub fn reconstruct_range(&self, window: Range<u64>) -> Result<Vec<u64>, BstError> {
        if window.start >= window.end {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut saw_ok = false;
        for (s, handle) in self.handles.iter().enumerate() {
            let clipped =
                window.start.max(self.boundaries[s])..window.end.min(self.boundaries[s + 1]);
            if clipped.start >= clipped.end {
                continue;
            }
            match handle.reconstruct_range(clipped) {
                Ok(part) => {
                    saw_ok = true;
                    out.extend(part);
                }
                Err(BstError::EmptyFilter) | Err(BstError::EmptyTree) => {}
                Err(e) => return Err(e),
            }
        }
        if !saw_ok {
            // No consulted shard contributed; classify over the WHOLE
            // engine via the one merge policy (a window over empty
            // shards on a live engine is Ok(vec![]), exactly like a
            // single tree whose root exists elsewhere).
            if let (_, Some(e)) = self.weights()? {
                return Err(e);
            }
        }
        Ok(out)
    }

    /// Whether any shard's handle is stale (set churn or occupancy churn
    /// past its stamps). Errors if the span was dropped.
    pub fn is_stale(&self) -> Result<bool, BstError> {
        let mut stale = false;
        for handle in &self.handles {
            stale |= handle.is_stale()?;
        }
        Ok(stale)
    }

    /// Operation counts accumulated across every shard handle.
    pub fn stats(&self) -> OpStats {
        let mut total = OpStats::new();
        for handle in &self.handles {
            total += handle.stats();
        }
        total
    }

    /// Returns the accumulated cross-shard stats and resets all shard
    /// counters.
    pub fn take_stats(&self) -> OpStats {
        let mut total = OpStats::new();
        for handle in &self.handles {
            total += handle.take_stats();
        }
        total
    }
}
