//! [`ShardedBstSystem`]: the partitioned engine and its builder.

use std::collections::BTreeMap;
use std::sync::Arc;

use bst_bloom::filter::BloomFilter;
use bst_bloom::hash::HashKind;
use bst_core::error::BstError;
use bst_core::metrics::OpStats;
use bst_core::persistence::{self, PersistError, ShardManifest};
use bst_core::store::FilterId;
use bst_core::system::{BstConfig, BstSystem};
use bst_obs::{AtomicHistogram, Counter, Recorder, Tracer};
use bytes::{Buf, BufMut, BytesMut};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::ShardQuery;
use crate::weight_cache::{
    filter_content_hash, CachedWeight, SlotKey, WeightCache, WeightCacheStats,
};

/// Magic bytes of a sharded-system snapshot.
const SHARD_MAGIC: &[u8; 4] = b"BSTH";

/// Shard boundaries for `shards` contiguous partitions of `[0, namespace)`:
/// `shards + 1` values, first 0, last `namespace`, widths within one of
/// each other. Every key belongs to exactly one `[b[s], b[s+1])` — the
/// routing rule [`ShardedBstSystem::shard_of`] implements (property-
/// tested in `tests/proptests.rs`).
///
/// # Panics
/// Panics unless `1 ≤ shards ≤ namespace` (the builder reports the same
/// condition as [`BstError::InvalidConfig`] instead).
pub fn shard_boundaries(namespace: u64, shards: usize) -> Vec<u64> {
    assert!(
        shards >= 1 && shards as u64 <= namespace,
        "shard count must satisfy 1 <= S <= namespace"
    );
    (0..=shards)
        .map(|i| ((i as u128 * namespace as u128) / shards as u128) as u64)
        .collect()
}

/// Mixes a batch seed with per-(shard, filter) coordinates so worker
/// scheduling cannot change which RNG stream serves which cell.
fn cell_seed(seed: u64, shard: u64, slot: u64) -> u64 {
    seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ slot.wrapping_add(1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Builder for a [`ShardedBstSystem`] — the same knobs as
/// [`bst_core::system::BstSystemBuilder`], plus the shard count. Every
/// shard is built from one shared plan, so filters and snapshots stay
/// interchangeable across shards.
pub struct ShardedBstSystemBuilder {
    namespace: u64,
    shards: usize,
    accuracy: f64,
    expected_set_size: u64,
    k: usize,
    kind: HashKind,
    seed: u64,
    cfg: BstConfig,
    depth_override: Option<u32>,
    occupied: Option<Vec<u64>>,
    weight_cache: bool,
}

impl ShardedBstSystemBuilder {
    fn new(namespace: u64) -> Self {
        ShardedBstSystemBuilder {
            namespace,
            shards: 4,
            accuracy: 0.9,
            expected_set_size: 1000,
            k: bst_bloom::params::DEFAULT_K,
            kind: HashKind::Murmur3,
            seed: 0,
            cfg: BstConfig::default(),
            depth_override: None,
            occupied: None,
            weight_cache: true,
        }
    }

    /// Number of shards `S` (default 4; must satisfy `1 ≤ S ≤ M`).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Target sampling accuracy in `(0, 1]` (drives the filter size `m`).
    pub fn accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Typical stored-set size the accuracy target refers to.
    pub fn expected_set_size(mut self, n: u64) -> Self {
        self.expected_set_size = n;
        self
    }

    /// Number of hash functions (paper default: 3).
    pub fn hash_count(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Hash family shared by every shard.
    pub fn hash_kind(mut self, kind: HashKind) -> Self {
        self.kind = kind;
        self
    }

    /// Seed for the shared hash family.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The full behaviour configuration (sampler + reconstructor).
    pub fn config(mut self, cfg: BstConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Pins the tree depth instead of deriving it from the cost model.
    pub fn depth(mut self, depth: u32) -> Self {
        self.depth_override = Some(depth);
        self
    }

    /// Enables or bypasses the engine-level persistent weight cache the
    /// batch entry points consult (default: enabled). Bypass exists for
    /// A/B measurement and for pinning cached ≡ uncached outputs in
    /// tests; it can also be toggled later with
    /// [`ShardedBstSystem::set_weight_cache`].
    pub fn weight_cache(mut self, enabled: bool) -> Self {
        self.weight_cache = enabled;
        self
    }

    /// Restricts the initial occupancy to `occupied` (any order,
    /// duplicates allowed). Without this call every namespace id starts
    /// occupied. Occupancy keeps evolving later through
    /// [`ShardedBstSystem::insert_occupied`] /
    /// [`ShardedBstSystem::remove_occupied`].
    pub fn occupied<I: IntoIterator<Item = u64>>(mut self, occupied: I) -> Self {
        self.occupied = Some(occupied.into_iter().collect());
        self
    }

    /// Resolves the plan and constructs every shard.
    ///
    /// # Panics
    /// Panics on an invalid configuration; [`Self::try_build`] returns the
    /// typed error instead.
    pub fn build(self) -> ShardedBstSystem {
        match self.try_build() {
            Ok(system) => system,
            // bst-lint: allow(L001) — documented `# Panics` contract; try_build is the fallible API
            Err(e) => panic!("invalid ShardedBstSystem configuration: {e}"),
        }
    }

    /// [`Self::build`], reporting configuration problems as
    /// [`BstError::InvalidConfig`] instead of panicking.
    pub fn try_build(self) -> Result<ShardedBstSystem, BstError> {
        if self.namespace == 0 {
            return Err(BstError::InvalidConfig("namespace must be non-empty"));
        }
        if self.shards == 0 || self.shards as u64 > self.namespace {
            return Err(BstError::InvalidConfig(
                "shard count must satisfy 1 <= S <= namespace",
            ));
        }
        let boundaries = shard_boundaries(self.namespace, self.shards);
        let occupied = match self.occupied {
            Some(occ) => {
                let mut occ = occ;
                occ.sort_unstable();
                occ.dedup();
                if occ.last().is_some_and(|&last| last >= self.namespace) {
                    return Err(BstError::InvalidConfig("occupied id outside the namespace"));
                }
                occ
            }
            None => (0..self.namespace).collect(),
        };
        let mut shards = Vec::with_capacity(self.shards);
        let mut start = 0usize;
        for s in 0..self.shards {
            // Index walk over the intact sorted vec: draining per shard
            // would memmove the tail once per shard, O(M·S).
            let cut = start + occupied[start..].partition_point(|&x| x < boundaries[s + 1]);
            let mine: Vec<u64> = occupied[start..cut].to_vec();
            start = cut;
            let mut builder = BstSystem::builder(self.namespace)
                .accuracy(self.accuracy)
                .expected_set_size(self.expected_set_size)
                .hash_count(self.k)
                .hash_kind(self.kind)
                .seed(self.seed)
                .config(self.cfg)
                .pruned(mine);
            if let Some(d) = self.depth_override {
                builder = builder.depth(d);
            }
            shards.push(builder.try_build()?);
        }
        let shard_count = shards.len();
        Ok(ShardedBstSystem {
            shared: Arc::new(Shared {
                boundaries,
                shards,
                registry: RwLock::new(Registry {
                    next_id: 0,
                    map: BTreeMap::new(),
                }),
                weight_cache: WeightCache::new(shard_count, self.weight_cache),
                tracer: Tracer::disabled(),
                batch_obs: RwLock::new(None),
            }),
        })
    }
}

/// Sharded filter ids → the per-shard store ids backing them.
struct Registry {
    next_id: u64,
    map: BTreeMap<u64, Vec<FilterId>>,
}

/// Metrics handles the two-phase batch path reports into once a serving
/// layer installs them ([`ShardedBstSystem::set_batch_obs`]). The
/// handles are plain `bst-obs` clones, so the installer keeps its own
/// copies registered on a [`bst_obs::MetricsRegistry`] — and can
/// re-install the same `Arc` into a replacement engine (a wire `LOAD`)
/// without losing continuity.
#[derive(Debug)]
pub struct BatchObs {
    /// Batches served through the two-phase scatter-gather.
    pub batches: Counter,
    /// Phase-1 (weighing) wall time per batch, microseconds. A warm
    /// batch over an unchanged filter population records ~0 here.
    pub weigh_us: AtomicHistogram,
    /// Phase-2 (sampling) wall time per batch, microseconds.
    pub sample_us: AtomicHistogram,
}

impl BatchObs {
    /// The `[lo, hi)` microsecond range and bin count of the phase
    /// histograms (1 s ceiling at µs resolution ÷ 10).
    pub const PHASE_US: (f64, f64, usize) = (0.0, 1_000_000.0, 100_000);

    /// Fresh handles not yet registered anywhere (the installer
    /// registers clones under its own naming).
    pub fn unregistered() -> Self {
        let (lo, hi, bins) = Self::PHASE_US;
        BatchObs {
            batches: Counter::new(),
            weigh_us: AtomicHistogram::new(lo, hi, bins),
            sample_us: AtomicHistogram::new(lo, hi, bins),
        }
    }
}

struct Shared {
    /// `S + 1` ascending values; shard `s` owns `[b[s], b[s+1])`.
    boundaries: Vec<u64>,
    shards: Vec<BstSystem>,
    registry: RwLock<Registry>,
    /// Engine-level persistent per-(filter, shard) weight cache for the
    /// batch entry points (see [`crate::weight_cache`]).
    weight_cache: WeightCache,
    /// Engine-level tracing facade: batch spans go here; per-op spans go
    /// through each shard's own tracer (kept in lockstep by
    /// [`ShardedBstSystem::set_recorder`]).
    tracer: Tracer,
    /// Batch phase metrics, absent until a serving layer installs them.
    batch_obs: RwLock<Option<Arc<BatchObs>>>,
}

/// A sharded BloomSampleTree engine over one namespace: `S` contiguous
/// shards, each a pruned-backend [`BstSystem`] sharing one plan, served
/// through scatter-gather queries whose merged results match a
/// single-tree system.
///
/// Cloning is an `Arc` bump; the handle is `Send + Sync`. Registered sets
/// span shards transparently: [`Self::create`] routes each key to its
/// owning shard and returns one sharded [`FilterId`] (its own id space —
/// distinct from the per-shard store ids it maps onto).
#[derive(Clone)]
pub struct ShardedBstSystem {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ShardedBstSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedBstSystem(M={}, shards={}, sets={})",
            self.namespace(),
            self.shard_count(),
            self.shared.registry.read().map.len()
        )
    }
}

impl ShardedBstSystem {
    /// Starts building a sharded system over `[0, namespace)`.
    pub fn builder(namespace: u64) -> ShardedBstSystemBuilder {
        ShardedBstSystemBuilder::new(namespace)
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Shard boundaries: `S + 1` ascending values, first 0, last `M`.
    pub fn boundaries(&self) -> &[u64] {
        &self.shared.boundaries
    }

    /// Namespace size `M`.
    pub fn namespace(&self) -> u64 {
        self.shared.boundaries.last().copied().unwrap_or(0)
    }

    /// The shard owning `key`.
    ///
    /// # Panics
    /// Panics if `key` lies outside the namespace.
    pub fn shard_of(&self, key: u64) -> usize {
        assert!(key < self.namespace(), "key {key} outside the namespace");
        self.route(key)
    }

    /// The routing rule behind every key-addressed operation; callers
    /// validate `key < M` first.
    fn route(&self, key: u64) -> usize {
        self.shared.boundaries.partition_point(|&b| b <= key) - 1
    }

    /// The per-shard systems, in shard order (for introspection and
    /// benchmarks; all facade operations route automatically).
    pub fn shard_systems(&self) -> &[BstSystem] {
        &self.shared.shards
    }

    /// The behaviour configuration every shard runs.
    pub fn config(&self) -> BstConfig {
        self.shared.shards[0].config()
    }

    /// Stores a key set as a query Bloom filter valid against **every**
    /// shard (all shards share one plan and hash family).
    pub fn store<I: IntoIterator<Item = u64>>(&self, keys: I) -> BloomFilter {
        self.shared.shards[0].store(keys)
    }

    /// Splits `keys` by owning shard after validating the whole batch
    /// against the namespace (atomic: an out-of-range key rejects the
    /// batch before anything is applied anywhere).
    fn partition_keys<I: IntoIterator<Item = u64>>(
        &self,
        keys: I,
    ) -> Result<Vec<Vec<u64>>, BstError> {
        let namespace = self.namespace();
        let mut parts = vec![Vec::new(); self.shard_count()];
        for key in keys {
            if key >= namespace {
                return Err(BstError::KeyOutsideNamespace(key));
            }
            parts[self.route(key)].push(key);
        }
        Ok(parts)
    }

    /// Looks a sharded id up in the registry.
    fn backing_ids(&self, id: FilterId) -> Result<Vec<FilterId>, BstError> {
        self.shared
            .registry
            .read()
            .map
            .get(&id.raw())
            .cloned()
            .ok_or(BstError::UnknownFilterId(id))
    }

    // ------------------------------------------------------------------
    // The store facade: sets spanning shards, one sharded id each.
    // ------------------------------------------------------------------

    /// Registers a mutable set over `keys`: each key lands in its owning
    /// shard's store, and the whole span is addressed by one stable
    /// sharded [`FilterId`]. Keys outside the namespace are rejected
    /// atomically.
    pub fn create<I: IntoIterator<Item = u64>>(&self, keys: I) -> Result<FilterId, BstError> {
        let parts = self.partition_keys(keys)?;
        let mut per_shard = Vec::with_capacity(self.shard_count());
        for (sys, part) in self.shared.shards.iter().zip(parts) {
            per_shard.push(sys.create(part)?);
        }
        let mut registry = self.shared.registry.write();
        let id = registry.next_id;
        registry.next_id += 1;
        registry.map.insert(id, per_shard);
        Ok(FilterId::from_raw(id))
    }

    /// Inserts `keys` into the stored set, routing each to its owning
    /// shard (whose set generation bumps, invalidating open handles on
    /// that shard). Rejects the whole batch if any key lies outside the
    /// namespace.
    pub fn insert_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<(), BstError> {
        let parts = self.partition_keys(keys)?;
        let backing = self.backing_ids(id)?;
        for ((sys, fid), part) in self.shared.shards.iter().zip(&backing).zip(parts) {
            if !part.is_empty() {
                sys.insert_keys(*fid, part)?;
            }
        }
        Ok(())
    }

    /// Removes `keys` from the stored set (counting-filter semantics),
    /// routed like [`Self::insert_keys`].
    pub fn remove_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<(), BstError> {
        let parts = self.partition_keys(keys)?;
        let backing = self.backing_ids(id)?;
        for ((sys, fid), part) in self.shared.shards.iter().zip(&backing).zip(parts) {
            if !part.is_empty() {
                sys.remove_keys(*fid, part)?;
            }
        }
        Ok(())
    }

    /// Projects the whole stored span to one plain [`BloomFilter`]
    /// snapshot (the union of the per-shard projections — exactly the
    /// filter of the union, since all shards share one hash family).
    pub fn get(&self, id: FilterId) -> Result<BloomFilter, BstError> {
        let backing = self.backing_ids(id)?;
        let mut merged: Option<BloomFilter> = None;
        for (sys, fid) in self.shared.shards.iter().zip(&backing) {
            let part = sys.get(*fid)?;
            match &mut merged {
                None => merged = Some(part),
                Some(m) => m.union_with(&part),
            }
        }
        merged.ok_or(BstError::UnknownFilterId(id))
    }

    /// Unregisters a stored set everywhere; the sharded id is retired and
    /// open handles report [`BstError::UnknownFilterId`] from their next
    /// operation.
    pub fn drop_set(&self, id: FilterId) -> Result<(), BstError> {
        let backing = {
            let mut registry = self.shared.registry.write();
            registry
                .map
                .remove(&id.raw())
                .ok_or(BstError::UnknownFilterId(id))?
        };
        // Attempt every shard even if one fails (e.g. a backing set
        // dropped directly through shard_systems()): stopping early
        // would leak the remaining shards' sets with no id left to
        // reach them. The first error is still reported.
        let mut first_error = None;
        for (sys, fid) in self.shared.shards.iter().zip(&backing) {
            if let Err(e) = sys.drop_set(*fid) {
                first_error.get_or_insert(e);
            }
        }
        // Garbage-collect the retired id's weight-cache entry (sharded
        // ids are never reused, so this is hygiene, not invalidation).
        self.shared.weight_cache.remove_stored(id.raw());
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Number of registered (sharded) sets.
    pub fn len(&self) -> usize {
        self.shared.registry.read().map.len()
    }

    /// Whether no sets are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live sharded ids, ascending.
    pub fn ids(&self) -> Vec<FilterId> {
        self.shared
            .registry
            .read()
            .map
            .keys()
            .map(|&raw| FilterId::from_raw(raw))
            .collect()
    }

    // ------------------------------------------------------------------
    // The persistent weight cache (batch phase-1 amortization).
    // ------------------------------------------------------------------

    /// Whether the engine-level persistent weight cache is enabled (the
    /// builder default; see
    /// [`ShardedBstSystemBuilder::weight_cache`]).
    pub fn weight_cache_enabled(&self) -> bool {
        self.shared.weight_cache.enabled()
    }

    /// Enables or bypasses the persistent weight cache at runtime.
    /// Disabling also clears it, so batches after a later re-enable
    /// start cold — and bypassed batches always produce exactly what
    /// cached ones would, since cached weights equal recomputed ones
    /// (pinned in `tests/e2e_shard.rs`).
    pub fn set_weight_cache(&self, enabled: bool) {
        self.shared.weight_cache.set_enabled(enabled);
    }

    /// Drops every cached weight and resets the effectiveness counters;
    /// the next batch re-weighs all its cells. Never required for
    /// correctness (staleness is stamp-checked on every probe) — this
    /// exists for measurement and tests.
    pub fn clear_weight_cache(&self) {
        self.shared.weight_cache.clear();
    }

    /// Hit/miss/repair counters of the persistent weight cache since
    /// construction or the last clear — a warm repeated batch shows
    /// `S × slots` new hits and no new misses.
    pub fn weight_cache_stats(&self) -> WeightCacheStats {
        self.shared.weight_cache.stats()
    }

    /// Clones of the weight cache's `(hits, misses, repairs)` counter
    /// handles, for registration on a [`bst_obs::MetricsRegistry`].
    /// They share cells with the cache itself, so registered series and
    /// [`Self::weight_cache_stats`] always agree — including across a
    /// [`Self::clear_weight_cache`] reset.
    pub fn weight_cache_counters(&self) -> (Counter, Counter, Counter) {
        self.shared.weight_cache.counters()
    }

    // ------------------------------------------------------------------
    // Observability (the `bst-obs` wiring).
    // ------------------------------------------------------------------

    /// The engine-level tracing facade (batch spans). Disabled by
    /// default; install a recorder with [`Self::set_recorder`].
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Installs (or with `None`, removes) one span recorder everywhere:
    /// the engine's own batch spans and every shard's per-op core spans
    /// report into it.
    pub fn set_recorder(&self, recorder: Option<Arc<dyn Recorder>>) {
        for sys in &self.shared.shards {
            sys.set_recorder(recorder.clone());
        }
        self.shared.tracer.set_recorder(recorder);
    }

    /// Installs (or with `None`, removes) the batch phase metrics sink
    /// the two-phase scatter reports into. The installer keeps its own
    /// clones of the handles (they are `Arc`-backed), so the same
    /// [`BatchObs`] can be re-installed into a replacement engine.
    pub fn set_batch_obs(&self, obs: Option<Arc<BatchObs>>) {
        *self.shared.batch_obs.write() = obs;
    }

    /// The installed batch phase metrics sink, if any.
    pub fn batch_obs(&self) -> Option<Arc<BatchObs>> {
        self.shared.batch_obs.read().clone()
    }

    /// Introspection/test hook: the cached per-shard weight cells for a
    /// stored sharded id, in shard order, if the cache holds an entry
    /// for it. Cells may be stale (lazy invalidation); their stamps say
    /// which state they reflect.
    pub fn cached_weights(&self, id: FilterId) -> Option<Vec<Option<CachedWeight>>> {
        self.shared.weight_cache.stored_cells(id.raw())
    }

    /// [`Self::cached_weights`] for an interned ad-hoc filter.
    pub fn cached_weights_for(&self, filter: &BloomFilter) -> Option<Vec<Option<CachedWeight>>> {
        self.shared.weight_cache.adhoc_cells(filter)
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// Opens a scatter-gather handle on a detached filter: every shard
    /// receives the same filter (valid everywhere — shared plan), and
    /// per-shard descent state accumulates independently.
    pub fn query(&self, filter: &BloomFilter) -> ShardQuery {
        let handles = self
            .shared
            .shards
            .iter()
            .map(|sys| sys.query(filter))
            .collect();
        ShardQuery::new(None, self.shared.boundaries.clone(), handles)
    }

    /// Opens a scatter-gather handle on a stored set: one generation-
    /// stamped per-shard handle each, so both store-churn and
    /// occupancy-churn staleness protocols apply per shard.
    pub fn query_id(&self, id: FilterId) -> Result<ShardQuery, BstError> {
        let backing = self.backing_ids(id)?;
        let mut handles = Vec::with_capacity(backing.len());
        for (sys, fid) in self.shared.shards.iter().zip(&backing) {
            handles.push(sys.query_id(*fid)?);
        }
        Ok(ShardQuery::new(
            Some(id),
            self.shared.boundaries.clone(),
            handles,
        ))
    }

    /// Draws one sample per query filter via a **two-phase** scatter over
    /// a crossbeam worker pool (`threads` workers; 0 = one per CPU,
    /// capped at the `shards × filters` cell count — so a low-shard
    /// engine still spreads a wide batch across every requested worker).
    /// Phase 1 consults the engine's **persistent weight cache** first
    /// (each filter interned by content hash) and dispatches weighing
    /// work only for missing or stale (shard, filter) cells — a warm
    /// repeated batch over an unchanged filter population skips phase 1
    /// entirely; the gather step picks one shard per filter
    /// proportionally to the weights; phase 2 then samples **only the
    /// chosen cells**, reusing any handles phase 1 warmed — ~S× less
    /// sampling work than sampling speculatively on every shard. Results
    /// align with `filters`; per-cell RNG seeding keeps the output
    /// deterministic for a fixed `seed` regardless of `threads`, and
    /// bit-identical whether weights came from the cache or a fresh walk.
    pub fn query_batch(
        &self,
        filters: &[BloomFilter],
        seed: u64,
        threads: usize,
    ) -> (Vec<Result<u64, BstError>>, OpStats) {
        let keys: Vec<Option<SlotKey<'_>>> = filters
            .iter()
            .map(|f| {
                Some(SlotKey::Adhoc {
                    hash: filter_content_hash(f),
                    filter: f,
                })
            })
            .collect();
        self.scatter_gather(filters.len(), seed, threads, &keys, |_, sys, slot| {
            Ok(Some(sys.query(&filters[slot])))
        })
    }

    /// [`Self::query_batch`] addressed by sharded store id (weight-cache
    /// entries are keyed by the id itself — no filter hashing). An
    /// unknown/dropped id yields `Err(UnknownFilterId)` for its slot
    /// without failing the rest of the batch.
    pub fn query_batch_ids(
        &self,
        ids: &[FilterId],
        seed: u64,
        threads: usize,
    ) -> (Vec<Result<u64, BstError>>, OpStats) {
        // Resolve the registry once; missing ids keep a None slot.
        let backing: Vec<Option<Vec<FilterId>>> = {
            let registry = self.shared.registry.read();
            ids.iter()
                .map(|id| registry.map.get(&id.raw()).cloned())
                .collect()
        };
        let keys: Vec<Option<SlotKey<'_>>> = ids
            .iter()
            .zip(&backing)
            .map(|(id, fids)| {
                fids.as_ref().map(|fids| SlotKey::Stored {
                    raw: id.raw(),
                    fids,
                })
            })
            .collect();
        let (mut results, stats) =
            self.scatter_gather(ids.len(), seed, threads, &keys, |shard, sys, slot| {
                match backing[slot].as_ref() {
                    None => Ok(None),
                    // A per-shard open failure (e.g. the backing set was
                    // dropped directly on a shard system) is a hard
                    // error for the slot, not a silent dead shard.
                    Some(fids) => sys.query_id(fids[shard]).map(Some),
                }
            });
        for (slot, id) in ids.iter().enumerate() {
            if backing[slot].is_none() {
                results[slot] = Err(BstError::UnknownFilterId(*id));
            }
        }
        (results, stats)
    }

    /// The shared **two-phase** scatter engine behind both batch entry
    /// points: `open(shard, sys, slot)` yields the per-shard handle for a
    /// slot: `Ok(None)` marks the slot dead on every shard (the caller
    /// patches its error in), `Err(e)` is a hard per-slot failure the
    /// gather step propagates. `keys[slot]` names the slot in the
    /// persistent weight cache (`None` = uncacheable, e.g. an unknown
    /// id).
    ///
    /// Phase 0 probes the weight cache for every (shard, slot) cell;
    /// hits (stamps current, possibly after a journal-repair delta) fill
    /// their grid cell with no filter work at all. Phase 1 weighs only
    /// the missing cells — no sampling — with the worker pool chunked
    /// over the *miss list* of the flattened cell grid, so even an S=1
    /// engine parallelises a wide cold batch, and a fully warm batch
    /// spawns no weighing workers at all; fresh weights are written back
    /// to the cache. The gather step merges errors and picks one shard
    /// per slot from the weights; phase 2 samples only the chosen cells,
    /// reusing the handles phase 1 warmed (cache-hit cells open theirs
    /// cold — warm-equals-cold keeps the draw identical). Per-cell
    /// seeding makes the result identical to the old one-phase scatter
    /// for the same `seed`, independent of worker placement and of the
    /// cache state.
    fn scatter_gather(
        &self,
        slots: usize,
        seed: u64,
        threads: usize,
        keys: &[Option<SlotKey<'_>>],
        open: impl Fn(usize, &BstSystem, usize) -> Result<Option<bst_core::query::Query>, BstError>
            + Sync,
    ) -> (Vec<Result<u64, BstError>>, OpStats) {
        let shard_count = self.shard_count();
        if slots == 0 {
            return (Vec::new(), OpStats::new());
        }
        // Observability: both reads are one uncontended lock/atomic each
        // and resolve to `None` until a serving layer installs sinks.
        let obs = self.shared.batch_obs.read().clone();
        let span = self.shared.tracer.start();
        let cells = shard_count * slots;
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .clamp(1, cells);

        // Phase 0: probe the persistent cache, one slot (= all S of its
        // cells) per call so the entry lookup and the ad-hoc collision
        // guard are paid once per slot. Cell index c = shard * slots +
        // slot. Hits carry no handle (phase 2 opens one if the cell is
        // chosen); misses are collected for weighing.
        let cache = &self.shared.weight_cache;
        let shards = &self.shared.shards;
        let mut grid: Vec<WeighedCell> = (0..cells)
            .map(|_| WeighedCell::dead(BstError::NoLiveLeaf))
            .collect();
        let mut missing: Vec<usize> = Vec::new();
        for (slot, key) in keys.iter().enumerate() {
            let served = key.as_ref().map(|key| cache.probe_slot(shards, key));
            for shard in 0..shard_count {
                let cell = shard * slots + slot;
                match served.as_ref().and_then(|row| row[shard]) {
                    Some(outcome) => grid[cell] = WeighedCell::cached(outcome),
                    None => missing.push(cell),
                }
            }
        }
        let mut stats = OpStats::new();

        // Phase 1: weigh only the missing cells, chunked across the pool.
        let weigh_started = obs.as_ref().map(|_| std::time::Instant::now());
        if !missing.is_empty() {
            let weigh_workers = workers.min(missing.len());
            let chunk = missing.len().div_ceil(weigh_workers);
            type WeighedPart = Vec<(usize, WeighedCell, Option<CachedWeight>)>;
            let mut weighed: Vec<(usize, WeighedPart, OpStats)> = crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for (w, batch) in missing.chunks(chunk).enumerate() {
                    let open = &open;
                    handles.push(scope.spawn(move |_| {
                        let mut stats = OpStats::new();
                        let mut part = Vec::with_capacity(batch.len());
                        for &cell in batch {
                            let (shard, slot) = (cell / slots, cell % slots);
                            let (weighed, stamped) =
                                weigh_cell(open(shard, &shards[shard], slot), &mut stats);
                            part.push((cell, weighed, stamped));
                        }
                        (w, part, stats)
                    }));
                }
                handles
                    .into_iter()
                    // bst-lint: allow(L001) — a worker panic must propagate, not be swallowed
                    .map(|h| h.join().expect("cell worker panicked"))
                    .collect()
            })
            // bst-lint: allow(L001) — scope fails only if a child panicked; propagate
            .expect("crossbeam scope failed");
            weighed.sort_by_key(|(w, _, _)| *w);
            for (_, part, worker_stats) in weighed {
                stats += worker_stats;
                for (cell, weighed_cell, stamped) in part {
                    let (shard, slot) = (cell / slots, cell % slots);
                    // Write-back happens on the gather thread, keeping
                    // the weighing workers free of cache-lock traffic.
                    if let (Some(key), Some(stamped)) = (keys[slot].as_ref(), stamped) {
                        cache.fill(shard, key, stamped);
                    }
                    grid[cell] = weighed_cell;
                }
            }
        }
        if let (Some(obs), Some(t0)) = (obs.as_ref(), weigh_started) {
            // Recorded even for fully-warm batches: a ~0 µs weighing
            // phase *is* the cache working.
            obs.weigh_us.record(t0.elapsed().as_secs_f64() * 1e6);
        }

        // Gather: per slot, merge verdicts, total the weights and pick a
        // shard. Chosen cells surrender their warm handle to phase 2
        // (cache-hit cells have none; phase 2 opens one on demand).
        let mut results: Vec<Result<u64, BstError>> = Vec::with_capacity(slots);
        let mut chosen: Vec<(usize, usize, Option<bst_core::query::Query>)> = Vec::new();
        'slots: for slot in 0..slots {
            let mut total = 0u64;
            let mut any_filter = false;
            for shard in 0..shard_count {
                let cell = &grid[shard * slots + slot];
                // A weightless cell's verdict is its *evaluation*
                // verdict. Hard verdicts (incompatible filter, dropped
                // backing set, ...) propagate exactly like the
                // ShardQuery handle path; Empty*/NoLiveLeaf are soft
                // and merge below.
                if cell.weight == 0 {
                    match cell.verdict {
                        Ok(())
                        | Err(BstError::EmptyFilter)
                        | Err(BstError::EmptyTree)
                        | Err(BstError::NoLiveLeaf) => {}
                        Err(e) => {
                            results.push(Err(e));
                            continue 'slots;
                        }
                    }
                }
                match cell.verdict {
                    Err(BstError::EmptyFilter) | Err(BstError::EmptyTree) => {}
                    _ => any_filter = true,
                }
                total += cell.weight;
            }
            if !any_filter {
                results.push(column_error(&grid, slots, shard_count, slot));
                continue;
            }
            if total == 0 {
                results.push(Err(BstError::NoLiveLeaf));
                continue;
            }
            let mut rng = StdRng::seed_from_u64(cell_seed(seed, u64::MAX, slot as u64));
            let mut pick = rng.gen_range(0..total);
            let mut fallback = None;
            let mut hit = None;
            for shard in 0..shard_count {
                let cell = &grid[shard * slots + slot];
                if pick < cell.weight {
                    hit = Some(shard);
                    break;
                }
                if cell.weight > 0 {
                    fallback = Some(shard);
                }
                pick -= cell.weight;
            }
            // pick < total guarantees a hit; the fallback to the last
            // positive-weight shard keeps the serving path panic-free
            // even if that invariant were ever violated.
            match hit.or(fallback) {
                Some(shard) => {
                    let cell = &mut grid[shard * slots + slot];
                    chosen.push((slot, shard, cell.handle.take()));
                    // Placeholder; phase 2 overwrites it.
                    results.push(Err(BstError::NoLiveLeaf));
                }
                None => results.push(Err(BstError::NoLiveLeaf)),
            }
        }
        drop(grid); // non-chosen handles are done after weighing

        // Phase 2: sample only the chosen cells, on the pool again. Each
        // cell's RNG stream depends on its (shard, slot) coordinates
        // alone, so placement cannot change a draw — and a cache-hit
        // cell's freshly opened handle draws exactly what a phase-1-
        // warmed one would (warm-equals-cold).
        let sample_started = obs.as_ref().map(|_| std::time::Instant::now());
        if !chosen.is_empty() {
            let workers = workers.min(chosen.len());
            let chunk = chosen.len().div_ceil(workers);
            let sampled: Vec<Vec<SampledSlot>> = crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for batch in chosen.chunks(chunk) {
                    let open = &open;
                    handles.push(scope.spawn(move |_| {
                        batch
                            .iter()
                            .map(|(slot, shard, handle)| {
                                let mut rng = StdRng::seed_from_u64(cell_seed(
                                    seed,
                                    *shard as u64,
                                    *slot as u64,
                                ));
                                let mut sample_from = |handle: &bst_core::query::Query| {
                                    let out = handle.sample(&mut rng);
                                    (*slot, out, handle.take_stats())
                                };
                                match handle {
                                    Some(handle) => sample_from(handle),
                                    // Cache hit: open the handle now. A
                                    // hard open failure (the backing set
                                    // vanished mid-batch) is the slot's
                                    // typed error, exactly as phase 1
                                    // would have reported it.
                                    None => match open(*shard, &shards[*shard], *slot) {
                                        Ok(Some(handle)) => sample_from(&handle),
                                        Ok(None) => {
                                            (*slot, Err(BstError::NoLiveLeaf), OpStats::new())
                                        }
                                        Err(e) => (*slot, Err(e), OpStats::new()),
                                    },
                                }
                            })
                            .collect()
                    }));
                }
                handles
                    .into_iter()
                    // bst-lint: allow(L001) — a worker panic must propagate, not be swallowed
                    .map(|h| h.join().expect("sample worker panicked"))
                    .collect()
            })
            // bst-lint: allow(L001) — scope fails only if a child panicked; propagate
            .expect("crossbeam scope failed");
            for (slot, out, sample_stats) in sampled.into_iter().flatten() {
                results[slot] = out;
                stats += sample_stats;
            }
        }
        if let Some(obs) = obs.as_ref() {
            if let Some(t0) = sample_started {
                obs.sample_us.record(t0.elapsed().as_secs_f64() * 1e6);
            }
            obs.batches.inc();
        }
        self.shared.tracer.record(
            "bst.shard.batch",
            span,
            &[
                ("slots", slots as u64),
                ("weighed_cells", missing.len() as u64),
                ("sampled_cells", chosen.len() as u64),
                ("intersections", stats.intersections),
                ("memberships", stats.memberships),
            ],
        );
        (results, stats)
    }

    // ------------------------------------------------------------------
    // Namespace occupancy (§5.2), routed to the owning shard.
    // ------------------------------------------------------------------

    /// Marks `key` occupied in its owning shard (bumping that shard's
    /// tree generation when the occupancy actually changed). Returns the
    /// owning shard's resulting tree generation.
    pub fn insert_occupied(&self, key: u64) -> Result<u64, BstError> {
        if key >= self.namespace() {
            return Err(BstError::KeyOutsideNamespace(key));
        }
        self.shared.shards[self.route(key)].insert_occupied(key)
    }

    /// Removes `key` from its owning shard's occupied set. Returns the
    /// owning shard's resulting tree generation.
    pub fn remove_occupied(&self, key: u64) -> Result<u64, BstError> {
        if key >= self.namespace() {
            return Err(BstError::KeyOutsideNamespace(key));
        }
        self.shared.shards[self.route(key)].remove_occupied(key)
    }

    /// Whether `key` is an occupied namespace element.
    pub fn contains_occupied(&self, key: u64) -> bool {
        key < self.namespace() && self.shared.shards[self.route(key)].contains_occupied(key)
    }

    /// Total occupied ids across all shards.
    pub fn occupied_count(&self) -> u64 {
        self.shared.shards.iter().map(|s| s.occupied_count()).sum()
    }

    /// All occupied ids, ascending (shards are range-ordered, so this is
    /// a concatenation).
    pub fn occupied_ids(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.occupied_count() as usize);
        for sys in &self.shared.shards {
            out.extend(sys.occupied_ids());
        }
        out
    }

    /// Whether every shard's maintained subtree weights match a
    /// from-scratch recount (the property suites' ground truth;
    /// `O(total nodes)`).
    pub fn weights_consistent(&self) -> bool {
        self.shared.shards.iter().all(|s| s.weights_consistent())
    }

    // ------------------------------------------------------------------
    // Whole-engine persistence.
    // ------------------------------------------------------------------

    /// Serializes the entire sharded engine — boundaries, the sharded id
    /// registry, and every shard's whole-system snapshot — into one
    /// buffer. Byte-deterministic for a given engine state.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(SHARD_MAGIC);
        buf.put_u8(persistence::VERSION);
        let manifest = {
            let registry = self.shared.registry.read();
            ShardManifest {
                boundaries: self.shared.boundaries.clone(),
                next_id: registry.next_id,
                // BTreeMap iterates ascending: deterministic bytes.
                entries: registry
                    .map
                    .iter()
                    .map(|(&id, fids)| (id, fids.iter().map(|f| f.raw()).collect()))
                    .collect(),
            }
        };
        persistence::put_shard_manifest(&mut buf, &manifest);
        for sys in &self.shared.shards {
            let payload = sys.to_bytes();
            buf.put_u64_le(payload.len() as u64);
            buf.put_slice(&payload);
        }
        buf.to_vec()
    }

    /// Restores an engine serialized with [`Self::to_bytes`]: the same
    /// boundaries, shards, stored spans and sharded ids, so scatter-
    /// gather results match the original for the same RNG state.
    pub fn from_bytes(input: &[u8]) -> Result<Self, BstError> {
        let mut input = input;
        persistence::check_header(&mut input, SHARD_MAGIC)?;
        let manifest = persistence::get_shard_manifest(&mut input)?;
        let namespace = match manifest.boundaries.last() {
            Some(&m) => m,
            None => {
                return Err(BstError::Persist(PersistError::Corrupt(
                    "shard manifest has no boundaries",
                )))
            }
        };
        let shard_count = manifest.boundaries.len() - 1;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            if input.remaining() < 8 {
                return Err(PersistError::Truncated.into());
            }
            let len = input.get_u64_le() as usize;
            if input.remaining() < len {
                return Err(PersistError::Truncated.into());
            }
            let sys = BstSystem::from_bytes(&input[..len])?;
            input.advance(len);
            if sys.tree().namespace() != namespace || !sys.tree().is_pruned() {
                return Err(BstError::Persist(PersistError::Corrupt(
                    "shard system does not match the manifest",
                )));
            }
            // Routing invariant: a shard may only occupy its own range
            // (occupied_ids is ascending, so the extremes suffice) — a
            // snapshot violating it would mis-route every key-addressed
            // operation after restore.
            let s = shards.len();
            let occ = sys.occupied_ids();
            if occ.first().zip(occ.last()).is_some_and(|(&lo, &hi)| {
                lo < manifest.boundaries[s] || hi >= manifest.boundaries[s + 1]
            }) {
                return Err(BstError::Persist(PersistError::Corrupt(
                    "shard occupancy outside its boundary range",
                )));
            }
            shards.push(sys);
        }
        if !input.is_empty() {
            return Err(BstError::Persist(PersistError::Corrupt(
                "trailing bytes after sharded snapshot",
            )));
        }
        if let Some(first) = shards.first() {
            if shards
                .iter()
                .any(|s| s.tree().plan() != first.tree().plan())
            {
                return Err(BstError::Persist(PersistError::Corrupt(
                    "shards disagree on the tree plan",
                )));
            }
        }
        let mut map = BTreeMap::new();
        for (id, raw_fids) in manifest.entries {
            let fids: Vec<FilterId> = raw_fids.into_iter().map(FilterId::from_raw).collect();
            for (sys, fid) in shards.iter().zip(&fids) {
                if sys.filters().generation(*fid).is_err() {
                    return Err(BstError::Persist(PersistError::Corrupt(
                        "manifest references a missing per-shard set",
                    )));
                }
            }
            map.insert(id, fids);
        }
        let shard_count = shards.len();
        Ok(ShardedBstSystem {
            shared: Arc::new(Shared {
                boundaries: manifest.boundaries,
                shards,
                registry: RwLock::new(Registry {
                    next_id: manifest.next_id,
                    map,
                }),
                // The cache is derived state and never persisted; a
                // restored engine starts cold with the default policy.
                weight_cache: WeightCache::new(shard_count, true),
                // Observability wiring is process state, not snapshot
                // state: the installer re-attaches after a restore.
                tracer: Tracer::disabled(),
                batch_obs: RwLock::new(None),
            }),
        })
    }
}

/// One phase-2 outcome: `(slot, sample, stats drained from the handle)`.
type SampledSlot = (usize, Result<u64, BstError>, OpStats);

/// One phase-1 (shard, slot) evaluation: the shard's live-leaf weight
/// for the slot, the evaluation verdict, and — for freshly weighed
/// cells — the warmed handle phase 2 samples from (cache-hit cells
/// carry none and open one lazily if chosen).
struct WeighedCell {
    weight: u64,
    verdict: Result<(), BstError>,
    handle: Option<bst_core::query::Query>,
}

impl WeighedCell {
    fn dead(err: BstError) -> Self {
        WeighedCell {
            weight: 0,
            verdict: Err(err),
            handle: None,
        }
    }

    /// A cell served from the persistent weight cache: the same
    /// weight/verdict classification as a fresh weigh, minus the handle.
    fn cached(outcome: Result<u64, BstError>) -> Self {
        match outcome {
            Ok(0) => WeighedCell::dead(BstError::NoLiveLeaf),
            Ok(weight) => WeighedCell {
                weight,
                verdict: Ok(()),
                handle: None,
            },
            Err(e) => WeighedCell::dead(e),
        }
    }
}

/// Weighs one (shard, slot) cell — phase 1 does **no** sampling.
/// Weightless shards carry `NoLiveLeaf` (never chosen by the gather
/// step); empty per-shard projections and empty shard trees count as
/// weight 0. The second value is the stamped outcome for the weight
/// cache: soft outcomes only (hard errors carry no meaningful stamps),
/// read under the computation's own state lock so the stamps name
/// exactly the state the weight reflects.
fn weigh_cell(
    handle: Result<Option<bst_core::query::Query>, BstError>,
    stats: &mut OpStats,
) -> (WeighedCell, Option<CachedWeight>) {
    let handle = match handle {
        // A hard per-shard open failure: the gather step propagates it.
        Err(e) => return (WeighedCell::dead(e), None),
        // Dead slot on this shard; slot-level errors are patched in by
        // the caller (e.g. unknown sharded ids).
        Ok(None) => return (WeighedCell::dead(BstError::NoLiveLeaf), None),
        Ok(Some(handle)) => handle,
    };
    let (outcome, set_generation, tree_generation) = handle.live_weight_stamped();
    *stats += handle.take_stats();
    let stamped = match outcome {
        Ok(_) | Err(BstError::EmptyFilter) | Err(BstError::EmptyTree) => Some(CachedWeight {
            outcome,
            set_generation,
            tree_generation,
        }),
        Err(_) => None,
    };
    let cell = match outcome {
        Ok(0) => WeighedCell::dead(BstError::NoLiveLeaf),
        Ok(weight) => WeighedCell {
            weight,
            verdict: Ok(()),
            handle: Some(handle),
        },
        // EmptyTree/EmptyFilter stay as the cell's verdict (weight 0):
        // the gather step classifies them exactly like
        // ShardQuery::weights, so batch slots and handle calls report
        // the same typed error.
        Err(e) => WeighedCell::dead(e),
    };
    (cell, stamped)
}

/// The slot error when no shard saw a usable filter — the same merge
/// policy as `ShardQuery::weights`: `EmptyTree` only when **every**
/// shard's tree is empty (the engine holds no occupancy, like a rootless
/// single tree), `EmptyFilter` otherwise.
fn column_error(
    grid: &[WeighedCell],
    slots: usize,
    shard_count: usize,
    slot: usize,
) -> Result<u64, BstError> {
    let all_empty_trees = (0..shard_count)
        .all(|shard| matches!(grid[shard * slots + slot].verdict, Err(BstError::EmptyTree)));
    Err(if all_empty_trees {
        BstError::EmptyTree
    } else {
        BstError::EmptyFilter
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(shards: usize) -> ShardedBstSystem {
        ShardedBstSystem::builder(8_192)
            .shards(shards)
            .expected_set_size(200)
            .seed(9)
            .build()
    }

    #[test]
    fn boundaries_partition_the_namespace() {
        for (namespace, shards) in [(8_192u64, 4usize), (1_000, 7), (5, 5), (1, 1)] {
            let b = shard_boundaries(namespace, shards);
            assert_eq!(b.len(), shards + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), namespace);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "{namespace}/{shards}");
        }
    }

    #[test]
    fn shard_of_is_total_and_consistent() {
        let sys = ShardedBstSystem::builder(1_000)
            .shards(7)
            .expected_set_size(50)
            .build();
        let b = sys.boundaries().to_vec();
        for key in 0..1_000u64 {
            let s = sys.shard_of(key);
            assert!(b[s] <= key && key < b[s + 1], "key {key} shard {s}");
        }
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(matches!(
            ShardedBstSystem::builder(100).shards(0).try_build(),
            Err(BstError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedBstSystem::builder(4).shards(5).try_build(),
            Err(BstError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedBstSystem::builder(0).try_build(),
            Err(BstError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedBstSystem::builder(100)
                .shards(2)
                .occupied([100u64])
                .try_build(),
            Err(BstError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shards_share_one_plan_and_split_occupancy() {
        let occ: Vec<u64> = (0..8_192u64).step_by(3).collect();
        let sys = ShardedBstSystem::builder(8_192)
            .shards(4)
            .expected_set_size(200)
            .seed(9)
            .occupied(occ.iter().copied())
            .build();
        let plan = sys.shard_systems()[0].tree().plan().clone();
        let mut total = 0;
        for (s, shard) in sys.shard_systems().iter().enumerate() {
            assert_eq!(shard.tree().plan(), &plan, "shard {s}");
            assert!(shard.tree().is_pruned());
            let ids = shard.occupied_ids();
            for id in &ids {
                assert_eq!(sys.shard_of(*id), s, "id {id} in wrong shard");
            }
            total += ids.len();
        }
        assert_eq!(total, occ.len());
        assert_eq!(sys.occupied_ids(), occ);
        assert_eq!(sys.occupied_count(), occ.len() as u64);
    }

    #[test]
    fn store_lifecycle_spans_shards() {
        let sys = engine(4);
        let keys: Vec<u64> = (0..300u64).map(|i| i * 27 % 8_192).collect();
        let id = sys.create(keys.iter().copied()).expect("create");
        assert_eq!(sys.len(), 1);
        assert_eq!(sys.ids(), vec![id]);
        let merged = sys.get(id).expect("get");
        for k in &keys {
            assert!(merged.contains(*k));
        }
        sys.insert_keys(id, [8_191u64]).expect("insert");
        sys.remove_keys(id, [0u64]).expect("remove");
        let rec = sys.query_id(id).expect("open").reconstruct().expect("rec");
        assert!(rec.binary_search(&8_191).is_ok());
        assert!(rec.binary_search(&0).is_err());
        // Atomic namespace validation.
        assert_eq!(
            sys.insert_keys(id, [5u64, 9_000]),
            Err(BstError::KeyOutsideNamespace(9_000))
        );
        sys.drop_set(id).expect("drop");
        assert_eq!(sys.get(id).unwrap_err(), BstError::UnknownFilterId(id));
        assert_eq!(sys.query_id(id).err(), Some(BstError::UnknownFilterId(id)));
        assert!(sys.is_empty());
        // Sharded ids are never reused.
        let id2 = sys.create([1u64]).expect("create");
        assert!(id2.raw() > id.raw());
    }

    #[test]
    fn detached_query_samples_and_reconstructs_across_shards() {
        let sys = engine(4);
        // Keys deliberately clustered into two shards.
        let keys: Vec<u64> = (100..200u64).chain(6_000..6_080).collect();
        let filter = sys.store(keys.iter().copied());
        let q = sys.query(&filter);
        // Full default occupancy: the positive set is the stored keys
        // plus Bloom false positives, exactly as on a dense single tree.
        let rec = q.reconstruct().expect("rec");
        assert!(rec.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        for k in &keys {
            assert!(rec.binary_search(k).is_ok(), "missing key {k}");
        }
        for x in &rec {
            assert!(filter.contains(*x), "non-positive {x}");
        }
        assert_eq!(q.live_weight(), Ok(rec.len() as u64));
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..200 {
            let s = q.sample(&mut rng).expect("sample");
            assert!(rec.binary_search(&s).is_ok(), "non-positive {s}");
            seen_low |= s < 4_096;
            seen_high |= s >= 4_096;
        }
        assert!(seen_low && seen_high, "both shards must serve samples");
        let many = q.sample_many(100, &mut rng).expect("many");
        assert!(!many.is_empty());
        for s in &many {
            assert!(rec.binary_search(s).is_ok());
        }
        // Range reconstruction clips to shard windows.
        assert_eq!(
            q.reconstruct_range(150..6_040).expect("range"),
            rec.iter()
                .copied()
                .filter(|&k| (150..6_040).contains(&k))
                .collect::<Vec<_>>()
        );
        assert_eq!(q.reconstruct_range(10..10).expect("empty"), vec![]);
    }

    #[test]
    fn empty_filters_and_unknown_ids_are_typed() {
        let sys = engine(2);
        let empty = sys.store(std::iter::empty());
        let q = sys.query(&empty);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(q.sample(&mut rng), Err(BstError::EmptyFilter));
        assert_eq!(q.reconstruct(), Err(BstError::EmptyFilter));
        assert_eq!(q.live_weight(), Err(BstError::EmptyFilter));
        let ghost = FilterId::from_raw(77);
        assert_eq!(
            sys.query_id(ghost).err(),
            Some(BstError::UnknownFilterId(ghost))
        );
        assert_eq!(sys.drop_set(ghost), Err(BstError::UnknownFilterId(ghost)));
    }

    #[test]
    fn query_batch_aligns_and_is_thread_deterministic() {
        let sys = engine(4);
        let filters: Vec<BloomFilter> = (0..9)
            .map(|i| sys.store((0..60u64).map(|j| (i * 997 + j * 13) % 8_192)))
            .collect();
        let (r1, stats) = sys.query_batch(&filters, 11, 1);
        let (r2, _) = sys.query_batch(&filters, 11, 4);
        assert_eq!(r1, r2, "thread count must not change results");
        assert_eq!(r1.len(), filters.len());
        for (f, r) in filters.iter().zip(&r1) {
            assert!(f.contains(r.expect("sample")));
        }
        assert!(stats.total_ops() > 0);
        // Different seeds reroute.
        let (r3, _) = sys.query_batch(&filters, 12, 2);
        assert_ne!(r1, r3, "a different seed should change some draws");
    }

    #[test]
    fn query_batch_ids_reports_unknown_slots() {
        let sys = engine(3);
        let ids: Vec<FilterId> = (0..5)
            .map(|i| {
                sys.create((0..50u64).map(|j| (i * 911 + j * 17) % 8_192))
                    .expect("create")
            })
            .collect();
        let dropped = ids[1];
        sys.drop_set(dropped).expect("drop");
        let (results, _) = sys.query_batch_ids(&ids, 5, 2);
        assert_eq!(results.len(), ids.len());
        for (id, r) in ids.iter().zip(&results) {
            if *id == dropped {
                assert_eq!(*r, Err(BstError::UnknownFilterId(dropped)));
            } else {
                assert!(sys.get(*id).expect("get").contains(r.expect("sample")));
            }
        }
    }

    #[test]
    fn occupancy_routes_to_owning_shard() {
        let sys = ShardedBstSystem::builder(8_192)
            .shards(4)
            .expected_set_size(100)
            .occupied((0..8_192u64).step_by(2))
            .build();
        assert!(!sys.contains_occupied(4_097));
        sys.insert_occupied(4_097).expect("insert");
        assert!(sys.contains_occupied(4_097));
        let owner = sys.shard_of(4_097);
        assert_eq!(sys.shard_systems()[owner].tree_generation(), 1);
        for (s, shard) in sys.shard_systems().iter().enumerate() {
            if s != owner {
                assert_eq!(shard.tree_generation(), 0, "shard {s} untouched");
            }
        }
        sys.remove_occupied(4_097).expect("remove");
        assert!(!sys.contains_occupied(4_097));
        assert_eq!(
            sys.insert_occupied(8_192),
            Err(BstError::KeyOutsideNamespace(8_192))
        );
    }

    #[test]
    fn snapshot_roundtrips_deterministically() {
        let sys = engine(4);
        let a = sys
            .create((0..200u64).map(|i| i * 41 % 8_192))
            .expect("create");
        let b = sys
            .create((0..50u64).map(|i| i * 163 % 8_192))
            .expect("create");
        sys.insert_keys(a, [4_242u64]).expect("insert");
        sys.drop_set(b).expect("drop");
        sys.insert_occupied(1).ok();
        sys.remove_occupied(2).ok();

        let bytes = sys.to_bytes();
        let restored = ShardedBstSystem::from_bytes(&bytes).expect("restore");
        assert_eq!(restored.boundaries(), sys.boundaries());
        assert_eq!(restored.ids(), sys.ids());
        assert_eq!(restored.occupied_ids(), sys.occupied_ids());
        assert_eq!(bytes, restored.to_bytes(), "byte-deterministic");

        // Same samples for the same RNG state, same reconstruction.
        let q1 = sys.query_id(a).expect("open");
        let q2 = restored.query_id(a).expect("open");
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(q1.sample(&mut r1), q2.sample(&mut r2));
        }
        assert_eq!(q1.reconstruct(), q2.reconstruct());

        // Sharded ids keep allocating past the restored next_id.
        let c = restored.create([3u64]).expect("create");
        assert!(c.raw() > a.raw());
    }

    #[test]
    fn snapshot_rejects_garbage() {
        let sys = engine(2);
        let bytes = sys.to_bytes();
        assert!(ShardedBstSystem::from_bytes(&bytes[..10]).is_err());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(
            ShardedBstSystem::from_bytes(&wrong).err(),
            Some(BstError::Persist(PersistError::BadMagic))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            ShardedBstSystem::from_bytes(&trailing).err(),
            Some(BstError::Persist(PersistError::Corrupt(_)))
        ));
    }

    #[test]
    fn empty_shard_trees_report_empty_tree_on_both_paths() {
        // An engine with no occupancy anywhere: the handle path and the
        // batch path must report the same typed error for a non-empty
        // filter (EmptyTree, exactly like a single-tree system).
        let sys = ShardedBstSystem::builder(4_096)
            .shards(4)
            .expected_set_size(50)
            .occupied(std::iter::empty())
            .build();
        let filter = sys.store([1u64, 2, 3]);
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(
            sys.query(&filter).sample(&mut rng),
            Err(BstError::EmptyTree)
        );
        let (results, _) = sys.query_batch(&[filter], 9, 2);
        assert_eq!(results, vec![Err(BstError::EmptyTree)]);
        // An empty filter on an empty engine also reports EmptyTree on
        // both paths (core checks the tree before the filter, and a
        // single-tree system answers the same way).
        let empty = sys.store(std::iter::empty());
        assert_eq!(sys.query(&empty).sample(&mut rng), Err(BstError::EmptyTree));
        let (results, _) = sys.query_batch(&[empty], 9, 2);
        assert_eq!(results, vec![Err(BstError::EmptyTree)]);
    }

    #[test]
    fn weight_cache_tracks_interleaved_operations() {
        // Interleave weight-consuming ops with mutations through other
        // entry points of the SAME handle: the cached weights must never
        // outlive the state they were computed from.
        let sys = engine(4);
        let id = sys
            .create((0..120u64).map(|i| i * 61 % 8_192))
            .expect("create");
        let q = sys.query_id(id).expect("open");
        let w0 = q.live_weight().expect("weight");
        // Mutate, then touch the handle via reconstruct (which syncs the
        // per-shard handles past the cached stamps) before sampling.
        sys.insert_keys(id, [8_000u64, 8_001, 8_002])
            .expect("insert");
        let rec = q.reconstruct().expect("reconstruct");
        assert_eq!(
            q.live_weight().expect("weight"),
            rec.len() as u64,
            "weight must match the post-mutation reconstruction"
        );
        assert!(rec.len() as u64 >= w0, "members were added");
        sys.remove_keys(id, (0..120u64).map(|i| i * 61 % 8_192))
            .expect("remove");
        let rec = q.reconstruct().expect("reconstruct");
        assert_eq!(q.live_weight().expect("weight"), rec.len() as u64);
    }

    #[test]
    fn empty_filter_on_partially_occupied_engine_reports_empty_filter() {
        // Occupancy only in shard 0's range: shard 1's tree is empty.
        // An empty filter must classify as EmptyFilter (a single pruned
        // tree over the same occupancy has a root, so the filter is
        // what failed) — not as EmptyTree just because SOME shard is
        // tree-empty.
        let sys = ShardedBstSystem::builder(4_096)
            .shards(2)
            .expected_set_size(50)
            .occupied((0..1_000u64).step_by(2))
            .build();
        let empty = sys.store(std::iter::empty());
        let mut rng = StdRng::seed_from_u64(6);
        let q = sys.query(&empty);
        assert_eq!(q.sample(&mut rng), Err(BstError::EmptyFilter));
        assert_eq!(q.live_weight(), Err(BstError::EmptyFilter));
        assert_eq!(q.reconstruct(), Err(BstError::EmptyFilter));
        let (results, _) = sys.query_batch(&[empty], 9, 2);
        assert_eq!(results, vec![Err(BstError::EmptyFilter)]);
        // A window over the empty shard on a live engine is Ok(vec![]),
        // exactly like a single tree whose occupancy lives elsewhere.
        let live = sys.store([0u64, 2, 4]);
        assert_eq!(sys.query(&live).reconstruct_range(3_000..4_000), Ok(vec![]));
    }

    #[test]
    fn snapshot_rejects_misrouted_occupancy() {
        // Occupancy entirely in the upper half: shard 0 empty, shard 1
        // full. Swapping the two shard payloads yields structurally
        // valid systems whose occupancy violates the routing invariant;
        // from_bytes must reject it as corrupt.
        let sys = ShardedBstSystem::builder(4_096)
            .shards(2)
            .expected_set_size(50)
            .occupied((2_048..4_096u64).step_by(2))
            .build();
        let bytes = sys.to_bytes();
        // Layout: "BSTH" v | manifest (no sets: 4 + 3*8 + 8 + 4 = 40) |
        // len0 u64 | payload0 | len1 u64 | payload1.
        let manifest_end = 5 + 40;
        let len0 =
            u64::from_le_bytes(bytes[manifest_end..manifest_end + 8].try_into().unwrap()) as usize;
        let p0 = &bytes[manifest_end + 8..manifest_end + 8 + len0];
        let rest = &bytes[manifest_end + 8 + len0..];
        let len1 = u64::from_le_bytes(rest[..8].try_into().unwrap()) as usize;
        let p1 = &rest[8..8 + len1];
        let mut swapped = bytes[..manifest_end].to_vec();
        for payload in [p1, p0] {
            swapped.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            swapped.extend_from_slice(payload);
        }
        assert_eq!(
            ShardedBstSystem::from_bytes(&swapped).err(),
            Some(BstError::Persist(PersistError::Corrupt(
                "shard occupancy outside its boundary range"
            )))
        );
        // The untouched snapshot still restores.
        assert!(ShardedBstSystem::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn warm_repeated_batch_skips_phase_one() {
        let sys = engine(4);
        let filters: Vec<BloomFilter> = (0..8)
            .map(|i| sys.store((0..60u64).map(|j| (i * 997 + j * 13) % 8_192)))
            .collect();
        let cells = (sys.shard_count() * filters.len()) as u64;
        let (r1, cold_stats) = sys.query_batch(&filters, 11, 2);
        let after_cold = sys.weight_cache_stats();
        assert_eq!(after_cold.hits, 0, "first batch is all misses");
        assert_eq!(after_cold.misses, cells);
        let (r2, warm_stats) = sys.query_batch(&filters, 11, 2);
        let after_warm = sys.weight_cache_stats();
        assert_eq!(r1, r2, "cached weights must not change results");
        assert_eq!(after_warm.misses, after_cold.misses, "no new misses");
        assert_eq!(after_warm.hits, cells, "every cell served from cache");
        assert!(
            warm_stats.total_ops() < cold_stats.total_ops() / 2,
            "a warm batch skips the phase-1 weighing walks ({} vs {})",
            warm_stats.total_ops(),
            cold_stats.total_ops()
        );
    }

    #[test]
    fn batch_results_identical_with_cache_bypassed() {
        let sys = engine(4);
        let ids: Vec<FilterId> = (0..5)
            .map(|i| {
                sys.create((0..50u64).map(|j| (i * 911 + j * 17) % 8_192))
                    .expect("create")
            })
            .collect();
        let filters: Vec<BloomFilter> = (0..6)
            .map(|i| sys.store((0..40u64).map(|j| (i * 389 + j * 23) % 8_192)))
            .collect();
        // Warm the cache, then compare against the bypass path on the
        // same engine — outputs must be bit-identical.
        let (warm_f, _) = sys.query_batch(&filters, 7, 2);
        let (warm_f2, _) = sys.query_batch(&filters, 7, 2);
        let (warm_i, _) = sys.query_batch_ids(&ids, 9, 2);
        let (warm_i2, _) = sys.query_batch_ids(&ids, 9, 2);
        sys.set_weight_cache(false);
        assert!(!sys.weight_cache_enabled());
        let (bypass_f, _) = sys.query_batch(&filters, 7, 2);
        let (bypass_i, _) = sys.query_batch_ids(&ids, 9, 2);
        assert_eq!(warm_f, bypass_f);
        assert_eq!(warm_f2, bypass_f);
        assert_eq!(warm_i, bypass_i);
        assert_eq!(warm_i2, bypass_i);
        sys.set_weight_cache(true);
    }

    #[test]
    fn store_churn_invalidates_only_the_mutated_cells() {
        let sys = engine(4);
        let ids: Vec<FilterId> = (0..3)
            .map(|i| {
                sys.create((0..60u64).map(|j| (i * 701 + j * 29) % 8_192))
                    .expect("create")
            })
            .collect();
        sys.query_batch_ids(&ids, 3, 2);
        let primed = sys.weight_cache_stats();
        // Mutate one set with a key landing in exactly one shard: only
        // that (set, shard) cell's set generation moves.
        sys.insert_keys(ids[1], [10u64]).expect("insert");
        let owner = sys.shard_of(10);
        let (results, _) = sys.query_batch_ids(&ids, 3, 2);
        let after = sys.weight_cache_stats();
        assert_eq!(
            after.misses - primed.misses,
            1,
            "exactly the mutated (set, shard) cell re-weighs"
        );
        assert_eq!(
            after.hits - primed.hits,
            (sys.shard_count() * ids.len()) as u64 - 1
        );
        // The refilled cell reflects the new membership.
        let cells = sys.cached_weights(ids[1]).expect("entry");
        let cell = cells[owner].expect("cell");
        assert_eq!(
            cell.set_generation,
            sys.shard_systems()[owner]
                .filters()
                .generation(
                    sys.query_id(ids[1]).expect("open").shard_handles()[owner]
                        .filter_id()
                        .expect("stored")
                )
                .expect("generation")
        );
        for r in &results {
            r.expect("all slots live");
        }
    }

    #[test]
    fn occupancy_churn_repairs_cached_weights_by_delta() {
        let sys = ShardedBstSystem::builder(8_192)
            .shards(4)
            .expected_set_size(200)
            .seed(9)
            .occupied((0..8_192u64).step_by(2))
            .build();
        let filters: Vec<BloomFilter> = (0..4)
            .map(|i| sys.store((0..60u64).map(|j| (i * 997 + j * 26) % 8_192)))
            .collect();
        sys.query_batch(&filters, 13, 2);
        let primed = sys.weight_cache_stats();
        // Toggle an odd id: the owning shard's tree generation moves by
        // 2 and the journal covers the gap, so cached weights repair
        // instead of re-weighing.
        sys.insert_occupied(4_097).expect("insert");
        sys.remove_occupied(4_097).expect("remove");
        let (r, _) = sys.query_batch(&filters, 13, 2);
        let after = sys.weight_cache_stats();
        assert_eq!(after.misses, primed.misses, "no cell re-weighs");
        assert!(
            after.repairs > primed.repairs,
            "the mutated shard's cells repair through the journal"
        );
        // Repaired weights must equal recomputed ones.
        sys.set_weight_cache(false);
        let (bypass, _) = sys.query_batch(&filters, 13, 2);
        assert_eq!(r, bypass);
    }

    #[test]
    fn cached_weights_match_recomputation() {
        let sys = engine(4);
        let id = sys
            .create((0..200u64).map(|i| i * 37 % 8_192))
            .expect("create");
        let filter = sys.store((0..80u64).map(|i| i * 53 % 8_192));
        sys.query_batch_ids(&[id], 5, 2);
        sys.query_batch(std::slice::from_ref(&filter), 5, 2);
        let stored = sys.cached_weights(id).expect("stored entry");
        let q = sys.query_id(id).expect("open");
        for (shard, cell) in stored.iter().enumerate() {
            let cell = cell.expect("every shard weighed");
            let expect = q.shard_handles()[shard].live_weight();
            match (cell.outcome, expect) {
                (Ok(w), Ok(e)) => assert_eq!(w, e, "shard {shard}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "shard {shard}"),
                (a, b) => panic!("shard {shard}: cached {a:?} vs recomputed {b:?}"),
            }
        }
        let adhoc = sys.cached_weights_for(&filter).expect("interned entry");
        for (shard, cell) in adhoc.iter().enumerate() {
            let cell = cell.expect("every shard weighed");
            assert_eq!(
                cell.outcome,
                sys.shard_systems()[shard].live_weight_stamped(&filter).0,
                "shard {shard}"
            );
            assert_eq!(cell.set_generation, 0, "ad-hoc filters have no set");
        }
        // Dropping the set garbage-collects its entry.
        sys.drop_set(id).expect("drop");
        assert!(sys.cached_weights(id).is_none());
    }

    #[test]
    fn batch_obs_and_spans_track_scatter_gather_phases() {
        use bst_obs::RingRecorder;
        let sys = engine(4);
        let obs = std::sync::Arc::new(BatchObs::unregistered());
        sys.set_batch_obs(Some(obs.clone()));
        let ring = std::sync::Arc::new(RingRecorder::new(64));
        sys.set_recorder(Some(ring.clone()));

        let filters: Vec<_> = (0..3u64)
            .map(|f| sys.store((0..80u64).map(move |i| (i * 131 + f * 7) % 8_192)))
            .collect();
        let (results, _) = sys.query_batch(&filters, 5, 2);
        assert!(results.iter().all(|r| r.is_ok()));

        assert_eq!(obs.batches.get(), 1);
        // Cold batch: every (shard, filter) cell is weighed; both phase
        // histograms record once per batch, even when a phase is empty.
        assert_eq!(obs.weigh_us.count(), 1);
        assert_eq!(obs.sample_us.count(), 1);

        let spans = ring.recent();
        let batch = spans
            .iter()
            .find(|s| s.name == "bst.shard.batch")
            .expect("batch span");
        let attr = |name: &str| {
            batch
                .attrs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .expect("attr")
        };
        assert_eq!(attr("slots"), 3);
        assert_eq!(attr("weighed_cells"), 12, "4 shards x 3 filters, cold");
        assert_eq!(attr("sampled_cells"), 3, "one chosen shard per slot");

        // Warm repeat: cache serves every weight, so no cells are
        // weighed, but the phase histogram still records the (near-zero)
        // phase time and the batch counter advances.
        let (results, _) = sys.query_batch(&filters, 6, 2);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(obs.batches.get(), 2);
        assert_eq!(obs.weigh_us.count(), 2);
        let spans = ring.recent();
        let warm = spans
            .iter()
            .rfind(|s| s.name == "bst.shard.batch")
            .expect("warm batch span");
        let warm_weighed = warm
            .attrs
            .iter()
            .find(|(k, _)| *k == "weighed_cells")
            .map(|(_, v)| *v)
            .expect("attr");
        assert_eq!(warm_weighed, 0, "warm batch serves weights from cache");

        // Detaching both sinks stops all emission and recording.
        sys.set_recorder(None);
        sys.set_batch_obs(None);
        let before = ring.recorded_total();
        let _ = sys.query_batch(&filters, 7, 2);
        assert_eq!(ring.recorded_total(), before);
        assert_eq!(obs.batches.get(), 2);
    }

    #[test]
    fn engine_is_cheap_to_clone_and_threadsafe() {
        fn assert_traits<T: Clone + Send + Sync + 'static>() {}
        assert_traits::<ShardedBstSystem>();
        fn assert_handle<T: Send + Sync + 'static>() {}
        assert_handle::<ShardQuery>();
    }

    #[test]
    fn single_shard_engine_matches_single_system_results() {
        // S = 1 is the degenerate case: one shard owning the whole
        // namespace must reconstruct exactly what a standalone pruned
        // system does.
        let occ: Vec<u64> = (0..4_096u64).step_by(3).collect();
        let sharded = ShardedBstSystem::builder(4_096)
            .shards(1)
            .expected_set_size(100)
            .seed(21)
            .occupied(occ.iter().copied())
            .build();
        let single = BstSystem::builder(4_096)
            .expected_set_size(100)
            .seed(21)
            .pruned(occ.iter().copied())
            .build();
        let keys: Vec<u64> = occ.iter().copied().step_by(5).collect();
        let f = sharded.store(keys.iter().copied());
        assert_eq!(
            sharded.query(&f).reconstruct().expect("sharded"),
            single.query(&f).reconstruct().expect("single"),
        );
    }
}
