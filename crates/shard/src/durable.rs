//! Crash-safe persistence for the sharded engine: WAL + background
//! checkpoints.
//!
//! [`DurableBstSystem`] wraps a [`ShardedBstSystem`] so that every
//! acked mutation is **logged before the ack**: the mutation applies to
//! the in-memory engine and appends one [`WalRecord`] to an append-only
//! log, both under one log mutex, so log order always equals
//! application order. Recovery is then deterministic: decode the newest
//! checkpoint (the ordinary byte-deterministic snapshot behind a small
//! header) and replay the uncovered log segments through the same
//! facade methods — set-id allocation is a deterministic function of
//! prior state, so replay re-derives every id and the recovered engine
//! answers queries bit-identically to the uncrashed one.
//!
//! ## Lock order and the read path
//!
//! Two locks exist here, acquired in a fixed order: the **log mutex**
//! first, then the **engine slot** (`RwLock<ShardedBstSystem>`, write
//! side only for engine swaps). Queries clone the engine handle through
//! the slot's read side and never touch the log mutex, so a checkpoint
//! — which holds the log mutex while encoding the engine through
//! per-shard *read* locks (copy-on-read of locked tree state) — never
//! blocks the read path. Writers stall for the duration of a
//! checkpoint's encode; readers do not.
//!
//! ## Checkpoints
//!
//! The log is a series of numbered segment files (`wal.<seq>.log`) and
//! the checkpoint embeds the sequence number of the newest segment it
//! covers ([`wal::encode_checkpoint`]); recovery replays only strictly
//! newer segments. That linkage makes the checkpoint transition atomic
//! with respect to crashes: appends first rotate into a fresh segment
//! the snapshot will not cover, the snapshot is staged and published
//! with `rename(2)` naming the rotated-away segment as covered, and
//! only then are covered segments unlinked. Dying between any two
//! steps recovers exactly — before the rename the old checkpoint still
//! replays every uncovered segment (the fresh one is empty), and after
//! it the old segments are stale *by sequence number*: skipped on
//! replay even when the crash kept them from being unlinked, and swept
//! at the next open. A background compactor thread runs this after
//! every [`DurableConfig::checkpoint_every`] appended records (and on
//! demand via [`DurableBstSystem::checkpoint`]).
//!
//! ## Append failures wedge the facade
//!
//! A failed append leaves the in-memory engine one mutation ahead of
//! the log; any later record would presuppose state the log never
//! captured, so the facade **fail-stops**: mutations are rejected with
//! [`DurableError::Wedged`] until a successful checkpoint — whose
//! snapshot includes the unlogged mutation — reconciles log and engine
//! (the compactor is kicked immediately; with the compactor disabled,
//! call [`DurableBstSystem::checkpoint`], or roll the engine back to
//! the acked state with [`DurableBstSystem::recover_from_disk`]).
//! Queries keep serving throughout.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use bst_core::error::BstError;
use bst_core::store::FilterId;
use bst_core::wal::{self, FsyncPolicy, Wal, WalRecord};
use bst_obs::WalObs;
use parking_lot::{Mutex, RwLock};

use crate::system::ShardedBstSystem;

/// Checkpoint file name inside the WAL directory.
const CHECKPOINT_FILE: &str = "checkpoint.bst";
/// Temp file the checkpoint is staged in before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// The log segment with sequence `seq`: `wal.<seq>.log`, zero-padded
/// for readable listings but parsed numerically.
fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal.{seq:08}.log"))
}

/// Parses a segment file name back to its sequence number.
fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal.")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Every log segment in `dir`, ascending by sequence number.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(segment_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// Durability knobs for a [`DurableBstSystem`].
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// When the log is flushed to stable storage (default: `Never` —
    /// survives SIGKILL; `Always` survives power loss).
    pub fsync: FsyncPolicy,
    /// Appended records between automatic background checkpoints;
    /// 0 disables the compactor (checkpoints happen only via
    /// [`DurableBstSystem::checkpoint`]).
    pub checkpoint_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: 4096,
        }
    }
}

/// Failures of the durable layer: disk IO, the wrapped engine's own
/// typed errors, a replay that diverged from the recorded history, or
/// a wedged facade awaiting its reconciling checkpoint.
#[derive(Debug)]
pub enum DurableError {
    /// The log or checkpoint file could not be read or written.
    Io(io::Error),
    /// The wrapped engine rejected an operation (or a snapshot failed
    /// to decode).
    Engine(BstError),
    /// Replay re-derived a different set id than the log recorded —
    /// the checkpoint and log disagree (mixed-up files, manual edits).
    ReplayDiverged {
        /// The id the log recorded at ack time.
        expected: u64,
        /// The id replay allocated.
        got: u64,
    },
    /// A mutation applied in memory but its log append failed, so the
    /// engine is ahead of the log. Mutations are refused until a
    /// successful checkpoint (or [`DurableBstSystem::recover_from_disk`])
    /// reconciles them; queries keep serving.
    Wedged {
        /// The append failure that wedged the facade.
        reason: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable io: {e}"),
            DurableError::Engine(e) => write!(f, "durable engine: {e}"),
            DurableError::ReplayDiverged { expected, got } => write!(
                f,
                "wal replay diverged: log recorded set id {expected}, replay allocated {got}"
            ),
            DurableError::Wedged { reason } => write!(
                f,
                "durable engine wedged until a checkpoint reconciles an unlogged mutation: {reason}"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<BstError> for DurableError {
    fn from(e: BstError) -> Self {
        DurableError::Engine(e)
    }
}

/// The open log plus its checkpoint bookkeeping, all behind one mutex.
struct LogState {
    wal: Wal,
    /// Sequence number of the active segment `wal` appends into.
    seq: u64,
    /// Valid bytes in uncovered segments *before* the active one —
    /// nonzero only after a checkpoint publish failed post-rotation or
    /// a multi-segment recovery; the `log_bytes` gauge reports this
    /// plus the active segment.
    prior_uncovered: u64,
    /// Records appended since the last checkpoint (drives the
    /// compactor's cadence).
    since_checkpoint: u64,
}

/// Message to the compactor thread.
enum Signal {
    /// The append path crossed the checkpoint cadence (or wedged and
    /// wants its reconciling checkpoint).
    Kick,
    /// The durable handle is dropping; exit after the current cycle.
    Stop,
}

struct DurableShared {
    dir: PathBuf,
    cfg: DurableConfig,
    /// The engine slot. Mutations and queries *read* it (cloning the
    /// `Arc`-backed handle); only engine swaps (recovery, adoption)
    /// write it. Always acquired after the log mutex, never before.
    engine: RwLock<ShardedBstSystem>,
    /// The log mutex: held across apply + append so log order equals
    /// application order, and across a whole checkpoint.
    log: Mutex<LogState>,
    obs: WalObs,
    /// Wake-up channel into the compactor thread (None when the
    /// compactor is disabled). `mpsc::Sender` predates `Sync` on some
    /// toolchains, so it sits behind a mutex; sends are rare and brief.
    signal: Mutex<Option<std::sync::mpsc::Sender<Signal>>>,
    /// The last background-checkpoint failure, if any (surfaced to
    /// embedders; a failed checkpoint leaves the previous one valid).
    checkpoint_error: Mutex<Option<String>>,
    /// Fail-stop latch: the reason the engine is ahead of the log, set
    /// when an append fails after its mutation applied. Mutations are
    /// rejected while set; a successful checkpoint or disk recovery
    /// clears it. Read and written only under the log mutex, so the
    /// check cannot race the reconciliation.
    wedged: Mutex<Option<String>>,
}

/// A [`ShardedBstSystem`] with crash-safe persistence: write-ahead
/// logging before every ack, background checkpoint compaction, and
/// recovery = newest checkpoint + uncovered-segment replay.
///
/// Not `Clone`: the value owns the compactor thread and the log file
/// handle. Share the wrapped engine for read-side work via
/// [`Self::system`] (a cheap `Arc`-bump clone).
pub struct DurableBstSystem {
    inner: Arc<DurableShared>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DurableBstSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DurableBstSystem({:?}, {:?})",
            self.inner.dir, self.inner.cfg
        )
    }
}

/// Writes `bytes` as the new checkpoint: temp file → fsync → atomic
/// rename → directory fsync. A crash at any point leaves either the old
/// or the new checkpoint fully intact, never a mix (a stranded temp
/// file is swept at the next open).
fn publish_checkpoint(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(CHECKPOINT_TMP);
    let dst = dir.join(CHECKPOINT_FILE);
    {
        let mut file = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &dst)?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// What disk recovery established beyond the engine itself.
struct DiskRecovery {
    /// Newest segment the checkpoint covers (0 with no checkpoint).
    covered_seq: u64,
    /// Replayed records across every uncovered segment.
    replayed: u64,
    /// Torn/corrupt bytes dropped after the last valid record.
    torn_bytes: u64,
    /// The segment appends continue into.
    tail_seq: u64,
    /// Valid byte length of that segment.
    tail_valid_len: u64,
    /// Valid bytes across replayed segments before the tail one.
    prior_uncovered: u64,
}

/// Decodes the checkpoint (if present) and replays every uncovered log
/// segment through the facade, in sequence order. Segments at or below
/// the checkpoint's covered sequence are stale leftovers of an
/// interrupted checkpoint and are skipped; a torn tail or a sequence
/// gap ends the trustworthy history (nothing after it is replayed).
fn recover_state(
    dir: &Path,
    fallback: Option<ShardedBstSystem>,
) -> Result<(ShardedBstSystem, DiskRecovery), DurableError> {
    let checkpoint = dir.join(CHECKPOINT_FILE);
    let (system, covered_seq) = match std::fs::read(&checkpoint) {
        Ok(bytes) => {
            let (covered, snapshot) = wal::decode_checkpoint(&bytes)?;
            (ShardedBstSystem::from_bytes(snapshot)?, covered)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => match fallback {
            Some(system) => (system, 0),
            None => return Err(DurableError::Io(e)),
        },
        Err(e) => return Err(DurableError::Io(e)),
    };
    let mut rec = DiskRecovery {
        covered_seq,
        replayed: 0,
        torn_bytes: 0,
        tail_seq: covered_seq + 1,
        tail_valid_len: 0,
        prior_uncovered: 0,
    };
    let mut next = covered_seq + 1;
    for (seq, path) in list_segments(dir)? {
        if seq <= covered_seq {
            continue; // covered by the checkpoint: stale, never replayed
        }
        if seq != next {
            break; // a gap: nothing after it is trustworthy
        }
        let recovery = wal::recover(&path)?;
        for record in &recovery.records {
            replay(&system, record)?;
        }
        rec.replayed += recovery.records.len() as u64;
        rec.torn_bytes += recovery.torn_bytes;
        rec.prior_uncovered += rec.tail_valid_len;
        rec.tail_seq = seq;
        rec.tail_valid_len = recovery.valid_len;
        next = seq + 1;
        if recovery.torn_bytes > 0 {
            break; // a tear ends the trustworthy history
        }
    }
    Ok((system, rec))
}

/// Applies one logged record through the ordinary facade, checking that
/// deterministic id allocation re-derives what the log recorded.
fn replay(system: &ShardedBstSystem, record: &WalRecord) -> Result<(), DurableError> {
    match record {
        WalRecord::Create { id, keys } => {
            let got = system.create(keys.iter().copied())?;
            if got.raw() != *id {
                return Err(DurableError::ReplayDiverged {
                    expected: *id,
                    got: got.raw(),
                });
            }
        }
        WalRecord::InsertKeys { id, keys } => {
            system.insert_keys(FilterId::from_raw(*id), keys.iter().copied())?;
        }
        WalRecord::RemoveKeys { id, keys } => {
            system.remove_keys(FilterId::from_raw(*id), keys.iter().copied())?;
        }
        WalRecord::DropSet { id } => {
            system.drop_set(FilterId::from_raw(*id))?;
        }
        WalRecord::OccInsert { id } => {
            system.insert_occupied(*id)?;
        }
        WalRecord::OccRemove { id } => {
            system.remove_occupied(*id)?;
        }
    }
    Ok(())
}

impl DurableBstSystem {
    /// Opens (or creates) a durable engine rooted at `dir`.
    ///
    /// With a checkpoint on disk, `build` is never called: the engine is
    /// the checkpoint plus the replayed uncovered segments, torn tail
    /// truncated. On a fresh directory `build` supplies the initial
    /// engine, which is checkpointed immediately — from then on the
    /// directory always holds a checkpoint, so recovery never needs the
    /// builder again.
    pub fn open(
        dir: &Path,
        cfg: DurableConfig,
        build: impl FnOnce() -> ShardedBstSystem,
    ) -> Result<DurableBstSystem, DurableError> {
        std::fs::create_dir_all(dir)?;
        // A crash between staging and renaming a checkpoint strands the
        // temp file; it is never read, so sweep it.
        let _ = std::fs::remove_file(dir.join(CHECKPOINT_TMP));
        let had_checkpoint = dir.join(CHECKPOINT_FILE).exists();
        let (system, mut rec) = recover_state(dir, (!had_checkpoint).then(build))?;
        if !had_checkpoint {
            // First open of this directory: checkpoint the initial
            // engine, covering anything replayed, and start fresh.
            publish_checkpoint(
                dir,
                &wal::encode_checkpoint(rec.tail_seq, &system.to_bytes()),
            )?;
            rec.covered_seq = rec.tail_seq;
            rec.tail_seq += 1;
            rec.tail_valid_len = 0;
            rec.prior_uncovered = 0;
            rec.replayed = 0;
        }
        let wal = Wal::open(
            &segment_path(dir, rec.tail_seq),
            cfg.fsync,
            rec.tail_valid_len,
        )?;
        // Sweep segments recovery will never read again: covered ones a
        // crash kept from being unlinked, and anything past a tear/gap.
        for (seq, path) in list_segments(dir)? {
            if seq <= rec.covered_seq || seq > rec.tail_seq {
                let _ = std::fs::remove_file(path);
            }
        }
        let obs = WalObs::new();
        obs.replayed.set(rec.replayed as i64);
        obs.torn_bytes.set(rec.torn_bytes as i64);
        obs.log_bytes
            .set((rec.prior_uncovered + rec.tail_valid_len) as i64);
        let shared = Arc::new(DurableShared {
            dir: dir.to_path_buf(),
            cfg,
            engine: RwLock::new(system),
            log: Mutex::new(LogState {
                wal,
                seq: rec.tail_seq,
                prior_uncovered: rec.prior_uncovered,
                since_checkpoint: rec.replayed,
            }),
            obs,
            signal: Mutex::new(None),
            checkpoint_error: Mutex::new(None),
            wedged: Mutex::new(None),
        });
        let compactor = if cfg.checkpoint_every > 0 {
            let (tx, rx) = std::sync::mpsc::channel();
            *shared.signal.lock() = Some(tx);
            let worker = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("bst-wal-compactor".into())
                .spawn(move || compactor_loop(&worker, &rx))
                .map_err(DurableError::Io)?;
            Some(handle)
        } else {
            None
        };
        Ok(DurableBstSystem {
            inner: shared,
            compactor,
        })
    }

    /// A handle to the wrapped engine for read-side work (queries,
    /// batches, stats). Mutating *through this handle* bypasses the log
    /// — always mutate through the durable facade instead.
    pub fn system(&self) -> ShardedBstSystem {
        self.inner.engine.read().clone()
    }

    /// The WAL instrumentation bundle (cloned handles share atomics).
    pub fn obs(&self) -> WalObs {
        self.inner.obs.clone()
    }

    /// The durability configuration this engine was opened with.
    pub fn config(&self) -> DurableConfig {
        self.inner.cfg
    }

    /// The directory holding the checkpoint and log segments.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The last background-checkpoint failure, if any.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        self.inner.checkpoint_error.lock().clone()
    }

    /// Rejects mutations while the engine is ahead of the log (see
    /// [`DurableError::Wedged`]). Called with the log mutex held, so
    /// the check cannot race a reconciling checkpoint.
    fn ensure_unwedged(&self) -> Result<(), DurableError> {
        match self.inner.wedged.lock().as_ref() {
            Some(reason) => Err(DurableError::Wedged {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Registers a set durably: applies, logs, then acks with the id.
    pub fn create<I: IntoIterator<Item = u64>>(&self, keys: I) -> Result<FilterId, DurableError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut log = self.inner.log.lock();
        self.ensure_unwedged()?;
        let engine = self.inner.engine.read().clone();
        let id = engine.create(keys.iter().copied())?;
        self.append(&mut log, WalRecord::Create { id: id.raw(), keys })?;
        Ok(id)
    }

    /// Durable [`ShardedBstSystem::insert_keys`].
    pub fn insert_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<(), DurableError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut log = self.inner.log.lock();
        self.ensure_unwedged()?;
        let engine = self.inner.engine.read().clone();
        engine.insert_keys(id, keys.iter().copied())?;
        self.append(&mut log, WalRecord::InsertKeys { id: id.raw(), keys })
    }

    /// Durable [`ShardedBstSystem::remove_keys`].
    pub fn remove_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<(), DurableError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut log = self.inner.log.lock();
        self.ensure_unwedged()?;
        let engine = self.inner.engine.read().clone();
        engine.remove_keys(id, keys.iter().copied())?;
        self.append(&mut log, WalRecord::RemoveKeys { id: id.raw(), keys })
    }

    /// Durable [`ShardedBstSystem::drop_set`].
    pub fn drop_set(&self, id: FilterId) -> Result<(), DurableError> {
        let mut log = self.inner.log.lock();
        self.ensure_unwedged()?;
        let engine = self.inner.engine.read().clone();
        engine.drop_set(id)?;
        self.append(&mut log, WalRecord::DropSet { id: id.raw() })
    }

    /// Durable [`ShardedBstSystem::insert_occupied`]. Returns the
    /// resulting tree generation of the owning shard.
    pub fn insert_occupied(&self, key: u64) -> Result<u64, DurableError> {
        let mut log = self.inner.log.lock();
        self.ensure_unwedged()?;
        let engine = self.inner.engine.read().clone();
        let generation = engine.insert_occupied(key)?;
        self.append(&mut log, WalRecord::OccInsert { id: key })?;
        Ok(generation)
    }

    /// Durable [`ShardedBstSystem::remove_occupied`].
    pub fn remove_occupied(&self, key: u64) -> Result<u64, DurableError> {
        let mut log = self.inner.log.lock();
        self.ensure_unwedged()?;
        let engine = self.inner.engine.read().clone();
        let generation = engine.remove_occupied(key)?;
        self.append(&mut log, WalRecord::OccRemove { id: key })?;
        Ok(generation)
    }

    /// Logs `record` under the held log mutex and updates the metrics
    /// bundle. An append failure is surfaced without acking — and since
    /// the mutation already applied in memory, it wedges the facade
    /// (see [`DurableError::Wedged`]) and kicks the compactor for the
    /// reconciling checkpoint.
    fn append(&self, log: &mut LogState, record: WalRecord) -> Result<(), DurableError> {
        let fsyncs_before = log.wal.fsyncs();
        if let Err(e) = log.wal.append(&record) {
            *self.inner.wedged.lock() = Some(e.to_string());
            self.kick_compactor();
            return Err(DurableError::Io(e));
        }
        log.since_checkpoint += 1;
        let obs = &self.inner.obs;
        obs.appended.inc();
        obs.fsyncs.add(log.wal.fsyncs() - fsyncs_before);
        obs.log_bytes
            .set((log.prior_uncovered + log.wal.len()) as i64);
        if self.inner.cfg.checkpoint_every > 0
            && log.since_checkpoint >= self.inner.cfg.checkpoint_every
        {
            self.kick_compactor();
        }
        Ok(())
    }

    /// Wakes the compactor thread, if one is running. A closed channel
    /// means it already exited (shutdown); nothing to wake.
    fn kick_compactor(&self) {
        if let Some(tx) = self.inner.signal.lock().as_ref() {
            let _ = tx.send(Signal::Kick);
        }
    }

    /// Checkpoints now: encodes the engine (per-shard read locks only —
    /// concurrent queries proceed), rotates the log, and publishes the
    /// snapshot atomically. SAVE-over-the-wire maps here.
    pub fn checkpoint(&self) -> Result<(), DurableError> {
        let mut log = self.inner.log.lock();
        checkpoint_locked(&self.inner, &mut log)
    }

    /// Replaces the engine with `system`, making it the new durable
    /// state: the adopted engine is checkpointed and prior log segments
    /// retired (wire `LOAD` with an explicit snapshot maps here).
    pub fn adopt(&self, system: ShardedBstSystem) -> Result<(), DurableError> {
        let mut log = self.inner.log.lock();
        // Swap first: if the publish then fails partway, the rename may
        // or may not have landed, so memory and disk could disagree —
        // wedge, and the next successful checkpoint (which snapshots
        // the adopted in-memory engine) republishes either way.
        *self.inner.engine.write() = system.clone();
        if let Err(e) = publish_and_rotate(&self.inner, &mut log, &system.to_bytes()) {
            *self.inner.wedged.lock() =
                Some(format!("adopt could not publish its checkpoint: {e}"));
            self.kick_compactor();
            return Err(e);
        }
        Ok(())
    }

    /// Re-runs recovery from disk — newest checkpoint + uncovered
    /// segment replay — and swaps the recovered engine in (wire `LOAD`
    /// with an empty body maps here). The log keeps its acked tail:
    /// recovery is read-only on disk state. Clears a wedge, if any: the
    /// swapped-in engine equals checkpoint + every logged record, so an
    /// unlogged (never acked) mutation is rolled back here.
    pub fn recover_from_disk(&self) -> Result<ShardedBstSystem, DurableError> {
        let mut log = self.inner.log.lock();
        // No fallback: open() guarantees a checkpoint exists from the
        // moment the directory is created, so a missing one is an error.
        let (system, rec) = recover_state(&self.inner.dir, None)?;
        self.inner.obs.replayed.set(rec.replayed as i64);
        self.inner.obs.torn_bytes.set(rec.torn_bytes as i64);
        log.since_checkpoint = rec.replayed;
        *self.inner.wedged.lock() = None;
        *self.inner.engine.write() = system.clone();
        Ok(system)
    }
}

/// The shared checkpoint body: runs with the log mutex held, so no
/// mutation can ack between the snapshot encode and the rotation
/// (records covered by the checkpoint are exactly the records in the
/// rotated-away segments). On success a wedge is cleared — the snapshot
/// included any unlogged mutation, so log and engine agree again.
fn checkpoint_locked(shared: &DurableShared, log: &mut LogState) -> Result<(), DurableError> {
    let started = Instant::now();
    let engine = shared.engine.read().clone();
    let bytes = engine.to_bytes();
    publish_and_rotate(shared, log, &bytes)?;
    let obs = &shared.obs;
    obs.checkpoints.inc();
    obs.last_checkpoint_us
        .set(started.elapsed().as_micros().min(i64::MAX as u128) as i64);
    Ok(())
}

/// The atomic checkpoint transition, with the log mutex held:
///
/// 1. rotate — appends move to a fresh segment the snapshot does not
///    cover;
/// 2. publish — the checkpoint lands via `rename(2)`, naming the
///    rotated-away segment as covered (this is the commit point: from
///    here recovery ignores the old segments, unlinked or not);
/// 3. retire — covered segments are unlinked, best-effort (a crash or
///    failure here leaves stale files recovery skips by sequence and
///    the next open sweeps).
///
/// An error between steps is equally safe: after a failed publish the
/// old checkpoint still covers exactly the old segments and replaying
/// them (plus the fresh, possibly now-appended segment) reproduces the
/// snapshot state, so appends continue and the next checkpoint retries.
fn publish_and_rotate(
    shared: &DurableShared,
    log: &mut LogState,
    snapshot: &[u8],
) -> Result<(), DurableError> {
    let covered = log.seq;
    let next_wal = Wal::open(&segment_path(&shared.dir, covered + 1), shared.cfg.fsync, 0)?;
    log.prior_uncovered += log.wal.len();
    log.wal = next_wal;
    log.seq = covered + 1;
    publish_checkpoint(&shared.dir, &wal::encode_checkpoint(covered, snapshot))?;
    log.prior_uncovered = 0;
    log.since_checkpoint = 0;
    *shared.wedged.lock() = None;
    if let Ok(segments) = list_segments(&shared.dir) {
        for (seq, path) in segments {
            if seq <= covered {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    shared.obs.log_bytes.set(0);
    Ok(())
}

/// Background compactor: waits for kicks from the append path and
/// checkpoints once per kick (queued duplicate kicks find
/// `since_checkpoint == 0` and skip cheaply). Failures leave the
/// previous checkpoint valid and are surfaced through
/// [`DurableBstSystem::last_checkpoint_error`].
fn compactor_loop(shared: &DurableShared, rx: &std::sync::mpsc::Receiver<Signal>) {
    loop {
        match rx.recv() {
            Ok(Signal::Kick) => {}
            // Stop, or every sender dropped: either way, shut down.
            Ok(Signal::Stop) | Err(_) => return,
        }
        let mut log = shared.log.lock();
        // A manual checkpoint may have raced ahead of this kick — but a
        // wedged facade needs its reconciling checkpoint regardless.
        if log.since_checkpoint == 0 && shared.wedged.lock().is_none() {
            continue;
        }
        let outcome = checkpoint_locked(shared, &mut log);
        drop(log);
        *shared.checkpoint_error.lock() = outcome.err().map(|e| e.to_string());
    }
}

impl Drop for DurableBstSystem {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            if let Some(tx) = self.inner.signal.lock().take() {
                let _ = tx.send(Signal::Stop);
            }
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bst-durable-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manual_only() -> DurableConfig {
        DurableConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: 0,
        }
    }

    fn base() -> ShardedBstSystem {
        ShardedBstSystem::builder(1_024)
            .shards(2)
            .expected_set_size(16)
            .seed(3)
            .build()
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_seq("wal.00000001.log"), Some(1));
        assert_eq!(segment_seq("wal.12345678901.log"), Some(12_345_678_901));
        let path = segment_path(Path::new("/d"), 42);
        let name = path.file_name().and_then(|n| n.to_str()).unwrap();
        assert_eq!(segment_seq(name), Some(42));
        assert_eq!(segment_seq("wal.log"), None);
        assert_eq!(segment_seq("checkpoint.bst"), None);
        assert_eq!(segment_seq("wal..log"), None);
    }

    /// The medium-severity review fix: once a mutation applies in
    /// memory but misses the log, the facade must refuse every further
    /// mutation (their records would presuppose unlogged state) until a
    /// checkpoint — whose snapshot includes the unlogged mutation —
    /// reconciles log and engine.
    #[test]
    fn wedged_facade_rejects_mutations_until_a_checkpoint_reconciles() {
        let dir = scratch("wedge-checkpoint");
        let durable = DurableBstSystem::open(&dir, manual_only(), base).unwrap();
        let id = durable.create([1u64, 2]).unwrap();
        // Engine-ahead-of-log, exactly what a failed append leaves
        // behind: the mutation is in memory, no record was written.
        durable.system().insert_keys(id, [7u64]).unwrap();
        *durable.inner.wedged.lock() = Some("injected: append failed".into());

        assert!(matches!(
            durable.insert_keys(id, [9u64]),
            Err(DurableError::Wedged { .. })
        ));
        assert!(matches!(
            durable.create([5u64]),
            Err(DurableError::Wedged { .. })
        ));
        assert!(matches!(
            durable.remove_occupied(3),
            Err(DurableError::Wedged { .. })
        ));
        // Queries keep serving while wedged.
        assert!(durable.system().query_id(id).is_ok());

        durable.checkpoint().unwrap();
        assert!(durable.inner.wedged.lock().is_none());
        durable.insert_keys(id, [9u64]).unwrap();

        // Recovery lands on the reconciled state, unlogged key included.
        let live = durable.system().to_bytes();
        drop(durable);
        let reopened =
            DurableBstSystem::open(&dir, manual_only(), || panic!("must recover")).unwrap();
        assert_eq!(reopened.system().to_bytes(), live);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The other way out of a wedge: disk recovery rolls the engine
    /// back to the acked history and unwedges.
    #[test]
    fn recover_from_disk_rolls_back_the_unlogged_mutation_and_unwedges() {
        let dir = scratch("wedge-recover");
        let durable = DurableBstSystem::open(&dir, manual_only(), base).unwrap();
        let id = durable.create([1u64, 2]).unwrap();
        let acked = durable.system().to_bytes();
        durable.system().insert_keys(id, [7u64]).unwrap();
        *durable.inner.wedged.lock() = Some("injected: append failed".into());

        let recovered = durable.recover_from_disk().unwrap();
        assert_eq!(recovered.to_bytes(), acked, "unlogged mutation rolled back");
        assert!(durable.inner.wedged.lock().is_none());
        durable.insert_keys(id, [9u64]).unwrap();
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
