//! Crash-safe persistence for the sharded engine: WAL + background
//! checkpoints.
//!
//! [`DurableBstSystem`] wraps a [`ShardedBstSystem`] so that every
//! acked mutation is **logged before the ack**: the mutation applies to
//! the in-memory engine and appends one [`WalRecord`] to an append-only
//! log, both under one log mutex, so log order always equals
//! application order. Recovery is then deterministic: decode the newest
//! checkpoint (the ordinary byte-deterministic snapshot) and replay the
//! log tail through the same facade methods — set-id allocation is a
//! deterministic function of prior state, so replay re-derives every id
//! and the recovered engine answers queries bit-identically to the
//! uncrashed one.
//!
//! ## Lock order and the read path
//!
//! Two locks exist here, acquired in a fixed order: the **log mutex**
//! first, then the **engine slot** (`RwLock<ShardedBstSystem>`, write
//! side only for engine swaps). Queries clone the engine handle through
//! the slot's read side and never touch the log mutex, so a checkpoint
//! — which holds the log mutex while encoding the engine through
//! per-shard *read* locks (copy-on-read of locked tree state) — never
//! blocks the read path. Writers stall for the duration of a
//! checkpoint's encode; readers do not.
//!
//! ## Checkpoints
//!
//! A background compactor thread checkpoints after every
//! [`DurableConfig::checkpoint_every`] appended records (and on
//! demand via [`DurableBstSystem::checkpoint`]): snapshot bytes go to a
//! temp file, `rename(2)` publishes them atomically, the directory is
//! fsynced, and only then is the log truncated — at every instant the
//! disk holds a checkpoint plus the exact tail of records after it.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use bst_core::error::BstError;
use bst_core::store::FilterId;
use bst_core::wal::{self, FsyncPolicy, Wal, WalRecord};
use bst_obs::WalObs;
use parking_lot::{Mutex, RwLock};

use crate::system::ShardedBstSystem;

/// Checkpoint file name inside the WAL directory.
const CHECKPOINT_FILE: &str = "checkpoint.bst";
/// Temp file the checkpoint is staged in before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Log file name inside the WAL directory.
const LOG_FILE: &str = "wal.log";

/// Durability knobs for a [`DurableBstSystem`].
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// When the log is flushed to stable storage (default: `Never` —
    /// survives SIGKILL; `Always` survives power loss).
    pub fsync: FsyncPolicy,
    /// Appended records between automatic background checkpoints;
    /// 0 disables the compactor (checkpoints happen only via
    /// [`DurableBstSystem::checkpoint`]).
    pub checkpoint_every: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: FsyncPolicy::Never,
            checkpoint_every: 4096,
        }
    }
}

/// Failures of the durable layer: disk IO, the wrapped engine's own
/// typed errors, or a replay that diverged from the recorded history.
#[derive(Debug)]
pub enum DurableError {
    /// The log or checkpoint file could not be read or written.
    Io(io::Error),
    /// The wrapped engine rejected an operation (or a snapshot failed
    /// to decode).
    Engine(BstError),
    /// Replay re-derived a different set id than the log recorded —
    /// the checkpoint and log disagree (mixed-up files, manual edits).
    ReplayDiverged {
        /// The id the log recorded at ack time.
        expected: u64,
        /// The id replay allocated.
        got: u64,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable io: {e}"),
            DurableError::Engine(e) => write!(f, "durable engine: {e}"),
            DurableError::ReplayDiverged { expected, got } => write!(
                f,
                "wal replay diverged: log recorded set id {expected}, replay allocated {got}"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<BstError> for DurableError {
    fn from(e: BstError) -> Self {
        DurableError::Engine(e)
    }
}

/// The open log plus its checkpoint bookkeeping, all behind one mutex.
struct LogState {
    wal: Wal,
    /// Records appended since the last checkpoint (drives the
    /// compactor's cadence).
    since_checkpoint: u64,
}

/// Message to the compactor thread.
enum Signal {
    /// The append path crossed the checkpoint cadence.
    Kick,
    /// The durable handle is dropping; exit after the current cycle.
    Stop,
}

struct DurableShared {
    dir: PathBuf,
    cfg: DurableConfig,
    /// The engine slot. Mutations and queries *read* it (cloning the
    /// `Arc`-backed handle); only engine swaps (recovery, adoption)
    /// write it. Always acquired after the log mutex, never before.
    engine: RwLock<ShardedBstSystem>,
    /// The log mutex: held across apply + append so log order equals
    /// application order, and across a whole checkpoint.
    log: Mutex<LogState>,
    obs: WalObs,
    /// Wake-up channel into the compactor thread (None when the
    /// compactor is disabled). `mpsc::Sender` predates `Sync` on some
    /// toolchains, so it sits behind a mutex; sends are rare and brief.
    signal: Mutex<Option<std::sync::mpsc::Sender<Signal>>>,
    /// The last background-checkpoint failure, if any (surfaced to
    /// embedders; a failed checkpoint leaves the previous one valid).
    checkpoint_error: Mutex<Option<String>>,
}

/// A [`ShardedBstSystem`] with crash-safe persistence: write-ahead
/// logging before every ack, background checkpoint compaction, and
/// recovery = newest checkpoint + log-tail replay.
///
/// Not `Clone`: the value owns the compactor thread and the log file
/// handle. Share the wrapped engine for read-side work via
/// [`Self::system`] (a cheap `Arc`-bump clone).
pub struct DurableBstSystem {
    inner: Arc<DurableShared>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DurableBstSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DurableBstSystem({:?}, {:?})",
            self.inner.dir, self.inner.cfg
        )
    }
}

/// Writes `bytes` as the new checkpoint: temp file → fsync → atomic
/// rename → directory fsync. A crash at any point leaves either the old
/// or the new checkpoint fully intact, never a mix.
fn publish_checkpoint(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(CHECKPOINT_TMP);
    let dst = dir.join(CHECKPOINT_FILE);
    {
        let mut file = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, &dst)?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Decodes the checkpoint (if present) and replays the log tail through
/// the facade. Returns the recovered engine, the number of replayed
/// records, and where the valid log prefix ends.
fn recover_state(
    dir: &Path,
    fallback: Option<ShardedBstSystem>,
) -> Result<(ShardedBstSystem, wal::Recovery), DurableError> {
    let checkpoint = dir.join(CHECKPOINT_FILE);
    let system = match std::fs::read(&checkpoint) {
        Ok(bytes) => ShardedBstSystem::from_bytes(&bytes)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => match fallback {
            Some(system) => system,
            None => return Err(DurableError::Io(e)),
        },
        Err(e) => return Err(DurableError::Io(e)),
    };
    let recovery = wal::recover(&dir.join(LOG_FILE))?;
    for record in &recovery.records {
        replay(&system, record)?;
    }
    Ok((system, recovery))
}

/// Applies one logged record through the ordinary facade, checking that
/// deterministic id allocation re-derives what the log recorded.
fn replay(system: &ShardedBstSystem, record: &WalRecord) -> Result<(), DurableError> {
    match record {
        WalRecord::Create { id, keys } => {
            let got = system.create(keys.iter().copied())?;
            if got.raw() != *id {
                return Err(DurableError::ReplayDiverged {
                    expected: *id,
                    got: got.raw(),
                });
            }
        }
        WalRecord::InsertKeys { id, keys } => {
            system.insert_keys(FilterId::from_raw(*id), keys.iter().copied())?;
        }
        WalRecord::RemoveKeys { id, keys } => {
            system.remove_keys(FilterId::from_raw(*id), keys.iter().copied())?;
        }
        WalRecord::DropSet { id } => {
            system.drop_set(FilterId::from_raw(*id))?;
        }
        WalRecord::OccInsert { id } => {
            system.insert_occupied(*id)?;
        }
        WalRecord::OccRemove { id } => {
            system.remove_occupied(*id)?;
        }
    }
    Ok(())
}

impl DurableBstSystem {
    /// Opens (or creates) a durable engine rooted at `dir`.
    ///
    /// With a checkpoint on disk, `build` is never called: the engine is
    /// the checkpoint plus the replayed log tail, torn tail truncated.
    /// On a fresh directory `build` supplies the initial engine, which
    /// is checkpointed immediately — from then on the directory always
    /// holds a checkpoint, so recovery never needs the builder again.
    pub fn open(
        dir: &Path,
        cfg: DurableConfig,
        build: impl FnOnce() -> ShardedBstSystem,
    ) -> Result<DurableBstSystem, DurableError> {
        std::fs::create_dir_all(dir)?;
        let had_checkpoint = dir.join(CHECKPOINT_FILE).exists();
        let (system, recovery) = recover_state(dir, (!had_checkpoint).then(build))?;
        if !had_checkpoint {
            publish_checkpoint(dir, &system.to_bytes())?;
        }
        let obs = WalObs::new();
        obs.replayed.set(recovery.records.len() as i64);
        obs.torn_bytes.set(recovery.torn_bytes as i64);
        obs.log_bytes.set(recovery.valid_len as i64);
        let wal = Wal::open(&dir.join(LOG_FILE), cfg.fsync, recovery.valid_len)?;
        let shared = Arc::new(DurableShared {
            dir: dir.to_path_buf(),
            cfg,
            engine: RwLock::new(system),
            log: Mutex::new(LogState {
                wal,
                since_checkpoint: recovery.records.len() as u64,
            }),
            obs,
            signal: Mutex::new(None),
            checkpoint_error: Mutex::new(None),
        });
        let compactor = if cfg.checkpoint_every > 0 {
            let (tx, rx) = std::sync::mpsc::channel();
            *shared.signal.lock() = Some(tx);
            let worker = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("bst-wal-compactor".into())
                .spawn(move || compactor_loop(&worker, &rx))
                .map_err(DurableError::Io)?;
            Some(handle)
        } else {
            None
        };
        Ok(DurableBstSystem {
            inner: shared,
            compactor,
        })
    }

    /// A handle to the wrapped engine for read-side work (queries,
    /// batches, stats). Mutating *through this handle* bypasses the log
    /// — always mutate through the durable facade instead.
    pub fn system(&self) -> ShardedBstSystem {
        self.inner.engine.read().clone()
    }

    /// The WAL instrumentation bundle (cloned handles share atomics).
    pub fn obs(&self) -> WalObs {
        self.inner.obs.clone()
    }

    /// The durability configuration this engine was opened with.
    pub fn config(&self) -> DurableConfig {
        self.inner.cfg
    }

    /// The directory holding the checkpoint and log.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The last background-checkpoint failure, if any.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        self.inner.checkpoint_error.lock().clone()
    }

    /// Registers a set durably: applies, logs, then acks with the id.
    pub fn create<I: IntoIterator<Item = u64>>(&self, keys: I) -> Result<FilterId, DurableError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut log = self.inner.log.lock();
        let engine = self.inner.engine.read().clone();
        let id = engine.create(keys.iter().copied())?;
        self.append(&mut log, WalRecord::Create { id: id.raw(), keys })?;
        Ok(id)
    }

    /// Durable [`ShardedBstSystem::insert_keys`].
    pub fn insert_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<(), DurableError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut log = self.inner.log.lock();
        let engine = self.inner.engine.read().clone();
        engine.insert_keys(id, keys.iter().copied())?;
        self.append(&mut log, WalRecord::InsertKeys { id: id.raw(), keys })
    }

    /// Durable [`ShardedBstSystem::remove_keys`].
    pub fn remove_keys<I: IntoIterator<Item = u64>>(
        &self,
        id: FilterId,
        keys: I,
    ) -> Result<(), DurableError> {
        let keys: Vec<u64> = keys.into_iter().collect();
        let mut log = self.inner.log.lock();
        let engine = self.inner.engine.read().clone();
        engine.remove_keys(id, keys.iter().copied())?;
        self.append(&mut log, WalRecord::RemoveKeys { id: id.raw(), keys })
    }

    /// Durable [`ShardedBstSystem::drop_set`].
    pub fn drop_set(&self, id: FilterId) -> Result<(), DurableError> {
        let mut log = self.inner.log.lock();
        let engine = self.inner.engine.read().clone();
        engine.drop_set(id)?;
        self.append(&mut log, WalRecord::DropSet { id: id.raw() })
    }

    /// Durable [`ShardedBstSystem::insert_occupied`]. Returns the
    /// resulting tree generation of the owning shard.
    pub fn insert_occupied(&self, key: u64) -> Result<u64, DurableError> {
        let mut log = self.inner.log.lock();
        let engine = self.inner.engine.read().clone();
        let generation = engine.insert_occupied(key)?;
        self.append(&mut log, WalRecord::OccInsert { id: key })?;
        Ok(generation)
    }

    /// Durable [`ShardedBstSystem::remove_occupied`].
    pub fn remove_occupied(&self, key: u64) -> Result<u64, DurableError> {
        let mut log = self.inner.log.lock();
        let engine = self.inner.engine.read().clone();
        let generation = engine.remove_occupied(key)?;
        self.append(&mut log, WalRecord::OccRemove { id: key })?;
        Ok(generation)
    }

    /// Logs `record` under the held log mutex and updates the metrics
    /// bundle. An append failure is surfaced without acking; the
    /// in-memory engine is then *ahead* of the log until the next
    /// successful checkpoint reconciles them.
    fn append(&self, log: &mut LogState, record: WalRecord) -> Result<(), DurableError> {
        let fsyncs_before = log.wal.fsyncs();
        log.wal.append(&record)?;
        log.since_checkpoint += 1;
        let obs = &self.inner.obs;
        obs.appended.inc();
        obs.fsyncs.add(log.wal.fsyncs() - fsyncs_before);
        obs.log_bytes.set(log.wal.len() as i64);
        if self.inner.cfg.checkpoint_every > 0
            && log.since_checkpoint >= self.inner.cfg.checkpoint_every
        {
            if let Some(tx) = self.inner.signal.lock().as_ref() {
                // A closed channel means the compactor already exited
                // (shutdown); nothing to wake.
                let _ = tx.send(Signal::Kick);
            }
        }
        Ok(())
    }

    /// Checkpoints now: encodes the engine (per-shard read locks only —
    /// concurrent queries proceed), publishes the snapshot atomically,
    /// and truncates the log. SAVE-over-the-wire maps here.
    pub fn checkpoint(&self) -> Result<(), DurableError> {
        let mut log = self.inner.log.lock();
        checkpoint_locked(&self.inner, &mut log)
    }

    /// Replaces the engine with `system`, making it the new durable
    /// state: the adopted engine is checkpointed and the log emptied
    /// (wire `LOAD` with an explicit snapshot maps here).
    pub fn adopt(&self, system: ShardedBstSystem) -> Result<(), DurableError> {
        let mut log = self.inner.log.lock();
        publish_checkpoint(&self.inner.dir, &system.to_bytes())?;
        log.wal.truncate()?;
        log.since_checkpoint = 0;
        self.inner.obs.log_bytes.set(0);
        *self.inner.engine.write() = system;
        Ok(())
    }

    /// Re-runs recovery from disk — newest checkpoint + log-tail replay
    /// — and swaps the recovered engine in (wire `LOAD` with an empty
    /// body maps here). The log keeps its acked tail: recovery is
    /// read-only on disk state.
    pub fn recover_from_disk(&self) -> Result<ShardedBstSystem, DurableError> {
        let mut log = self.inner.log.lock();
        // No fallback: open() guarantees a checkpoint exists from the
        // moment the directory is created, so a missing one is an error.
        let (system, recovery) = recover_state(&self.inner.dir, None)?;
        self.inner.obs.replayed.set(recovery.records.len() as i64);
        self.inner.obs.torn_bytes.set(recovery.torn_bytes as i64);
        log.since_checkpoint = recovery.records.len() as u64;
        *self.inner.engine.write() = system.clone();
        Ok(system)
    }
}

/// The shared checkpoint body: runs with the log mutex held, so no
/// mutation can ack between the snapshot encode and the log truncation
/// (records covered by the checkpoint are exactly the records removed).
fn checkpoint_locked(shared: &DurableShared, log: &mut LogState) -> Result<(), DurableError> {
    let started = Instant::now();
    let engine = shared.engine.read().clone();
    let bytes = engine.to_bytes();
    publish_checkpoint(&shared.dir, &bytes)?;
    let fsyncs_before = log.wal.fsyncs();
    log.wal.truncate()?;
    log.since_checkpoint = 0;
    let obs = &shared.obs;
    obs.fsyncs.add(log.wal.fsyncs() - fsyncs_before);
    obs.checkpoints.inc();
    obs.last_checkpoint_us
        .set(started.elapsed().as_micros().min(i64::MAX as u128) as i64);
    obs.log_bytes.set(0);
    Ok(())
}

/// Background compactor: waits for kicks from the append path and
/// checkpoints once per kick (queued duplicate kicks find
/// `since_checkpoint == 0` and skip cheaply). Failures leave the
/// previous checkpoint valid and are surfaced through
/// [`DurableBstSystem::last_checkpoint_error`].
fn compactor_loop(shared: &DurableShared, rx: &std::sync::mpsc::Receiver<Signal>) {
    loop {
        match rx.recv() {
            Ok(Signal::Kick) => {}
            // Stop, or every sender dropped: either way, shut down.
            Ok(Signal::Stop) | Err(_) => return,
        }
        let mut log = shared.log.lock();
        // A manual checkpoint may have raced ahead of this kick.
        if log.since_checkpoint == 0 {
            continue;
        }
        let outcome = checkpoint_locked(shared, &mut log);
        drop(log);
        *shared.checkpoint_error.lock() = outcome.err().map(|e| e.to_string());
    }
}

impl Drop for DurableBstSystem {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            if let Some(tx) = self.inner.signal.lock().take() {
                let _ = tx.send(Signal::Stop);
            }
            let _ = handle.join();
        }
    }
}
