//! Property-based tests for shard routing and scatter-gather soundness:
//! the boundaries partition `[0, M)` exactly — every key maps to exactly
//! one shard, no gaps, no overlaps — and a sharded engine reconstructs
//! exactly what a single pruned system over the same occupancy does.

use bst_bloom::hash::HashKind;
use bst_core::system::BstSystem;
use bst_shard::{shard_boundaries, ShardedBstSystem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Boundaries tile the namespace: `S + 1` strictly ascending values
    /// from 0 to `M`, so consecutive pairs cover `[0, M)` with no gaps
    /// and no overlaps, and widths stay within one of each other.
    #[test]
    fn boundaries_partition_exactly(
        namespace in 1u64..2_000_000,
        shards_raw in 1usize..64,
    ) {
        let shards = shards_raw.min(namespace as usize);
        let b = shard_boundaries(namespace, shards);
        prop_assert_eq!(b.len(), shards + 1);
        prop_assert_eq!(b[0], 0);
        prop_assert_eq!(*b.last().unwrap(), namespace);
        prop_assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        // No gaps, no overlaps: consecutive ranges abut by construction,
        // and total width telescopes to M.
        let total: u64 = b.windows(2).map(|w| w[1] - w[0]).sum();
        prop_assert_eq!(total, namespace);
        // Balance: widths differ by at most one.
        let widths: Vec<u64> = b.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
        prop_assert!(max - min <= 1, "widths {min}..{max} unbalanced");
    }

    /// Every key maps to exactly one shard, and the routing rule
    /// (binary search over the boundaries) lands it in that shard.
    #[test]
    fn every_key_maps_to_exactly_one_shard(
        namespace in 1u64..1_000_000,
        shards_raw in 1usize..64,
        keys in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let shards = shards_raw.min(namespace as usize);
        let b = shard_boundaries(namespace, shards);
        for key in keys.into_iter().map(|k| k % namespace) {
            let owners: Vec<usize> = (0..shards)
                .filter(|&s| b[s] <= key && key < b[s + 1])
                .collect();
            prop_assert_eq!(owners.len(), 1, "key {} owned by {:?}", key, owners);
            let routed = b.partition_point(|&x| x <= key) - 1;
            prop_assert_eq!(routed, owners[0], "routing disagrees for key {}", key);
        }
    }

    /// A sharded engine reconstructs exactly what a single pruned system
    /// over the same occupancy does — occupancy is partitioned across
    /// shards, so even Bloom false positives agree.
    #[test]
    fn sharded_reconstruct_equals_single_tree(
        occupied in prop::collection::btree_set(0u64..2_048, 10..200),
        shards in 1usize..6,
        member_stride in 1usize..4,
    ) {
        let occ: Vec<u64> = occupied.iter().copied().collect();
        let sharded = ShardedBstSystem::builder(2_048)
            .shards(shards)
            .expected_set_size(64)
            .seed(33)
            .occupied(occ.iter().copied())
            .build();
        let single = BstSystem::builder(2_048)
            .expected_set_size(64)
            .seed(33)
            .pruned(occ.iter().copied())
            .build();
        let members: Vec<u64> = occ.iter().copied().step_by(member_stride).collect();
        let filter = sharded.store(members.iter().copied());
        let via_shards = sharded.query(&filter).reconstruct().expect("sharded");
        let via_single = single.query(&filter).reconstruct().expect("single");
        prop_assert_eq!(via_shards, via_single);
    }

    /// Under arbitrary interleaved `insert_occupied`/`remove_occupied`
    /// routed through the engine, every shard's maintained subtree
    /// weights exactly equal a from-scratch recount, per shard and in
    /// total — and a warm scatter-gather handle repaired through the
    /// mutation journals reports exactly what a cold handle computes.
    #[test]
    fn sharded_maintained_weights_equal_recount(
        occupied in prop::collection::btree_set(0u64..2_048, 5..150),
        shards in 1usize..6,
        ops in prop::collection::vec((any::<bool>(), 0u64..2_048), 1..60),
    ) {
        let occ: Vec<u64> = occupied.iter().copied().collect();
        let engine = ShardedBstSystem::builder(2_048)
            .shards(shards)
            .expected_set_size(64)
            .seed(41)
            .occupied(occ.iter().copied())
            .build();
        let members: Vec<u64> = (0..2_048u64).step_by(5).collect();
        let filter = engine.store(members.iter().copied());
        let warm = engine.query(&filter);
        let _ = warm.live_weight();
        let mut live = occupied.clone();
        for (insert, id) in ops {
            if insert {
                engine.insert_occupied(id).unwrap();
                live.insert(id);
            } else {
                engine.remove_occupied(id).unwrap();
                live.remove(&id);
            }
        }
        // Per shard and in total: maintained == recount.
        prop_assert!(engine.weights_consistent());
        let mut total = 0u64;
        for sys in engine.shard_systems() {
            let ids = sys.occupied_ids();
            prop_assert_eq!(sys.occupied_count(), ids.len() as u64);
            total += ids.len() as u64;
        }
        prop_assert_eq!(total, live.len() as u64);
        prop_assert_eq!(engine.occupied_count(), live.len() as u64);
        prop_assert_eq!(engine.occupied_ids(), live.into_iter().collect::<Vec<u64>>());
        // Warm handle ≡ cold handle after journal repair.
        let cold = engine.query(&filter);
        prop_assert_eq!(warm.live_weight(), cold.live_weight());
        prop_assert_eq!(warm.reconstruct(), cold.reconstruct());
    }

    /// The engine-level persistent weight cache never changes batch
    /// output: under arbitrary interleaved store churn, occupancy churn
    /// and repeated batches, a cache-enabled engine and a cache-bypassed
    /// twin driven identically produce bit-identical `query_batch` and
    /// `query_batch_ids` results — and every *fresh* cached cell equals
    /// a from-scratch recomputation of that shard's live weight. Runs
    /// under both filter layouts (classic and cache-line blocked).
    #[test]
    fn cached_batches_equal_bypassed_batches_under_churn(
        occupied in prop::collection::btree_set(0u64..2_048, 20..200),
        shards in 1usize..5,
        ops in prop::collection::vec((0u8..4, 0u64..2_048), 1..40),
        seed in any::<u64>(),
        kind in prop_oneof![Just(HashKind::Murmur3), Just(HashKind::DeltaBlocked)],
    ) {
        let occ: Vec<u64> = occupied.iter().copied().collect();
        let build = |cache: bool| {
            ShardedBstSystem::builder(2_048)
                .shards(shards)
                .expected_set_size(64)
                .seed(27)
                .hash_kind(kind)
                .occupied(occ.iter().copied())
                .weight_cache(cache)
                .build()
        };
        let cached = build(true);
        let bypass = build(false);
        let keysets: Vec<Vec<u64>> = (0..3u64)
            .map(|i| (0..40u64).map(|j| (i * 709 + j * 31) % 2_048).collect())
            .collect();
        let ids_cached: Vec<_> = keysets
            .iter()
            .map(|k| cached.create(k.iter().copied()).unwrap())
            .collect();
        let ids_bypass: Vec<_> = keysets
            .iter()
            .map(|k| bypass.create(k.iter().copied()).unwrap())
            .collect();
        let filters: Vec<_> = (0..3u64)
            .map(|i| cached.store((0..30u64).map(|j| (i * 523 + j * 41) % 2_048)))
            .collect();
        // Prime both engines, then interleave mutations with batches.
        cached.query_batch(&filters, seed, 2);
        cached.query_batch_ids(&ids_cached, seed, 2);
        bypass.query_batch(&filters, seed, 2);
        bypass.query_batch_ids(&ids_bypass, seed, 2);
        for (round, (op, id)) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    cached.insert_occupied(id).unwrap();
                    bypass.insert_occupied(id).unwrap();
                }
                1 => {
                    cached.remove_occupied(id).unwrap();
                    bypass.remove_occupied(id).unwrap();
                }
                2 => {
                    let set = (id % 3) as usize;
                    cached.insert_keys(ids_cached[set], [id]).unwrap();
                    bypass.insert_keys(ids_bypass[set], [id]).unwrap();
                }
                _ => {
                    let set = (id % 3) as usize;
                    cached.remove_keys(ids_cached[set], [id]).unwrap();
                    bypass.remove_keys(ids_bypass[set], [id]).unwrap();
                }
            }
            let batch_seed = seed.wrapping_add(round as u64);
            let (rc, _) = cached.query_batch(&filters, batch_seed, 2);
            let (rb, _) = bypass.query_batch(&filters, batch_seed, 2);
            prop_assert_eq!(rc, rb, "detached batch diverged at round {}", round);
            let (rc, _) = cached.query_batch_ids(&ids_cached, batch_seed, 2);
            let (rb, _) = bypass.query_batch_ids(&ids_bypass, batch_seed, 2);
            prop_assert_eq!(rc, rb, "stored batch diverged at round {}", round);
        }
        // Every cached cell that claims freshness equals a recount.
        for (slot, id) in ids_cached.iter().enumerate() {
            let Some(cells) = cached.cached_weights(*id) else { continue };
            let handle = cached.query_id(*id).expect("open");
            for (shard, cell) in cells.iter().enumerate() {
                let Some(cell) = cell else { continue };
                let sys = &cached.shard_systems()[shard];
                let fid = handle.shard_handles()[shard].filter_id().expect("stored");
                let fresh = cell.set_generation == sys.filters().generation(fid).unwrap()
                    && cell.tree_generation == sys.tree_generation();
                if fresh {
                    prop_assert_eq!(
                        cell.outcome,
                        sys.live_weight_stamped(&sys.get(fid).unwrap()).0,
                        "stale weight served as fresh: set {} shard {}", slot, shard
                    );
                }
            }
        }
    }

    /// Scatter-gather sampling returns positives only, and the sharded
    /// live-leaf weight equals the single system's reconstruction size.
    #[test]
    fn sharded_samples_are_positives(
        occupied in prop::collection::btree_set(0u64..2_048, 20..200),
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let occ: Vec<u64> = occupied.iter().copied().collect();
        let sharded = ShardedBstSystem::builder(2_048)
            .shards(shards)
            .expected_set_size(64)
            .seed(33)
            .occupied(occ.iter().copied())
            .build();
        let members: Vec<u64> = occ.iter().copied().step_by(3).collect();
        let filter = sharded.store(members.iter().copied());
        let q = sharded.query(&filter);
        let positives = q.reconstruct().expect("reconstruct");
        prop_assert_eq!(q.live_weight().expect("weight"), positives.len() as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let s = q.sample(&mut rng).expect("sample");
            prop_assert!(positives.binary_search(&s).is_ok(), "non-positive {}", s);
        }
    }
}
