//! Durability tests: crash recovery is bit-identical to an uncrashed
//! twin up to the last acked record, checkpoints run concurrently with
//! live queries, and decoded engines continue their generation counters
//! so warm handles and cached weights never alias across a reload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bst_core::wal::FsyncPolicy;
use bst_shard::{DurableBstSystem, DurableConfig, ShardedBstSystem};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A process/thread-unique scratch directory (no tempfile crate in the
/// offline vendor set). Removed up front so reruns start clean.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bst-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn no_compactor() -> DurableConfig {
    DurableConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0,
    }
}

fn build_base(namespace: u64, shards: usize) -> ShardedBstSystem {
    ShardedBstSystem::builder(namespace)
        .shards(shards)
        .expected_set_size(64)
        .seed(19)
        .build()
}

/// Every `wal.<seq>.log` segment in `dir`, ascending by name (the
/// zero-padded sequence makes lexicographic = numeric order here).
fn wal_segments(dir: &PathBuf) -> Vec<PathBuf> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal.") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments
}

/// The single live segment of a quiesced log directory.
fn only_segment(dir: &PathBuf) -> PathBuf {
    let segments = wal_segments(dir);
    assert_eq!(segments.len(), 1, "expected one segment, got {segments:?}");
    segments.into_iter().next().unwrap()
}

/// One replayable mutation, mirrored onto the durable engine and (for
/// the surviving prefix) onto the plain uncrashed twin.
#[derive(Clone, Debug)]
enum Op {
    Create(Vec<u64>),
    InsertKeys(usize, Vec<u64>),
    RemoveKeys(usize, Vec<u64>),
    OccRemove(u64),
    OccInsert(u64),
}

/// Turns the proptest raw tuples into ops that are guaranteed to
/// succeed (and therefore each append exactly one WAL record): key
/// churn only targets sets that exist, occupancy ops toggle against the
/// tracked live set, and removals only remove keys they first inserted.
fn materialize(raw: &[(u32, u64)], namespace: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut sets = 0usize;
    // Every id starts occupied (the base engine is fully occupied).
    let mut vacant: Vec<u64> = Vec::new();
    for (kind, x) in raw {
        let key = x % namespace;
        match kind % 5 {
            0 => {
                ops.push(Op::Create(
                    (0..6)
                        .map(|j| (x.wrapping_add(j * 131)) % namespace)
                        .collect(),
                ));
                sets += 1;
            }
            1 if sets > 0 => {
                ops.push(Op::InsertKeys(
                    (*x as usize) % sets,
                    vec![key, (key + 7) % namespace],
                ));
            }
            2 if sets > 0 => {
                // Insert-then-remove, so the counting filter never
                // underflows regardless of the set's prior contents.
                ops.push(Op::InsertKeys((*x as usize) % sets, vec![key]));
                ops.push(Op::RemoveKeys((*x as usize) % sets, vec![key]));
            }
            3 => {
                if let Some(pos) = vacant.iter().position(|v| *v == key) {
                    vacant.swap_remove(pos);
                    ops.push(Op::OccInsert(key));
                } else {
                    vacant.push(key);
                    ops.push(Op::OccRemove(key));
                }
            }
            _ => {
                ops.push(Op::Create(vec![key]));
                sets += 1;
            }
        }
    }
    ops
}

fn apply_durable(durable: &DurableBstSystem, ids: &mut Vec<bst_core::store::FilterId>, op: &Op) {
    match op {
        Op::Create(keys) => ids.push(durable.create(keys.iter().copied()).unwrap()),
        Op::InsertKeys(set, keys) => durable
            .insert_keys(ids[*set], keys.iter().copied())
            .unwrap(),
        Op::RemoveKeys(set, keys) => durable
            .remove_keys(ids[*set], keys.iter().copied())
            .unwrap(),
        Op::OccRemove(key) => {
            durable.remove_occupied(*key).unwrap();
        }
        Op::OccInsert(key) => {
            durable.insert_occupied(*key).unwrap();
        }
    }
}

fn apply_plain(system: &ShardedBstSystem, ids: &mut Vec<bst_core::store::FilterId>, op: &Op) {
    match op {
        Op::Create(keys) => ids.push(system.create(keys.iter().copied()).unwrap()),
        Op::InsertKeys(set, keys) => system.insert_keys(ids[*set], keys.iter().copied()).unwrap(),
        Op::RemoveKeys(set, keys) => system.remove_keys(ids[*set], keys.iter().copied()).unwrap(),
        Op::OccRemove(key) => {
            system.remove_occupied(*key).unwrap();
        }
        Op::OccInsert(key) => {
            system.insert_occupied(*key).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The crash drill: arbitrary interleaved mutations are logged, the
    /// process "dies" (drop), and the log is cut at a random byte
    /// offset — torn mid-frame more often than not. Recovery must
    /// produce an engine bit-identical to an uncrashed twin that
    /// executed exactly the acked records surviving the cut.
    #[test]
    fn recovery_after_random_cut_is_bit_identical_to_acked_prefix(
        raw in prop::collection::vec((any::<u32>(), any::<u64>()), 1..40),
        shards in 1usize..4,
        cut_fraction in 0.0f64..1.0,
    ) {
        const NAMESPACE: u64 = 512;
        let dir = scratch_dir("cut");
        let ops = materialize(&raw, NAMESPACE);
        {
            let durable = DurableBstSystem::open(&dir, no_compactor(), || {
                build_base(NAMESPACE, shards)
            }).unwrap();
            let mut ids = Vec::new();
            for op in &ops {
                apply_durable(&durable, &mut ids, op);
            }
        } // drop = crash after the last ack (compactor disabled)

        // Cut the log at a random byte offset.
        let log_path = only_segment(&dir);
        let full = std::fs::read(&log_path).unwrap();
        let cut = ((full.len() as f64) * cut_fraction) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // How many whole records survive the cut is exactly what the
        // torn-tail scan reports; the twin executes that acked prefix.
        let survived = bst_core::wal::recover(&log_path).unwrap().records.len();
        prop_assert!(survived <= ops.len());
        let twin = build_base(NAMESPACE, shards);
        let mut twin_ids = Vec::new();
        for op in &ops[..survived] {
            apply_plain(&twin, &mut twin_ids, op);
        }

        let recovered = DurableBstSystem::open(&dir, no_compactor(), || {
            panic!("checkpoint exists; the builder must not run")
        }).unwrap();
        prop_assert_eq!(recovered.system().to_bytes(), twin.to_bytes());
        prop_assert_eq!(recovered.obs().replayed.get(), survived as i64);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A checkpoint (snapshot encode + atomic publish + log truncate) never
/// blocks the read path: samples drawn *while a checkpoint is in
/// flight* succeed and return positives, and at least one sample
/// provably overlaps a checkpoint.
#[test]
fn checkpoint_runs_concurrently_with_live_sampling() {
    let dir = scratch_dir("concurrent");
    let durable = DurableBstSystem::open(&dir, no_compactor(), || build_base(8_192, 4)).unwrap();
    let members: Vec<u64> = (0..600u64).map(|i| (i * 97 + 5) % 8_192).collect();
    let id = durable.create(members.iter().copied()).unwrap();
    let sys = durable.system();
    let expected = sys.query_id(id).unwrap().reconstruct().unwrap();

    let in_checkpoint = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let overlapped = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..2_000 {
                if overlapped.load(Ordering::Acquire) {
                    break;
                }
                in_checkpoint.store(true, Ordering::Release);
                durable.checkpoint().unwrap();
                in_checkpoint.store(false, Ordering::Release);
            }
            done.store(true, Ordering::Release);
        });
        scope.spawn(|| {
            let q = sys.query_id(id).unwrap();
            let mut rng = StdRng::seed_from_u64(77);
            while !overlapped.load(Ordering::Acquire) && !done.load(Ordering::Acquire) {
                let started_inside = in_checkpoint.load(Ordering::Acquire);
                let got = q.sample(&mut rng).unwrap();
                assert!(
                    expected.binary_search(&got).is_ok(),
                    "sample {got} is not a positive"
                );
                if started_inside && in_checkpoint.load(Ordering::Acquire) {
                    overlapped.store(true, Ordering::Release);
                }
            }
        });
    });
    assert!(
        overlapped.load(Ordering::Acquire),
        "no sample overlapped any of 2000 checkpoints"
    );
    assert!(durable.obs().checkpoints.get() >= 1);
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The background compactor checkpoints on its own once the append
/// cadence is crossed, truncating the log without losing state.
#[test]
fn background_compactor_checkpoints_at_the_configured_cadence() {
    let dir = scratch_dir("compactor");
    let cfg = DurableConfig {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 8,
    };
    let durable = DurableBstSystem::open(&dir, cfg, || build_base(1_024, 2)).unwrap();
    for i in 0..32u64 {
        durable.create([(i * 37) % 1_024]).unwrap();
    }
    // The compactor runs asynchronously; wait for it to land.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while durable.obs().checkpoints.get() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(durable.obs().checkpoints.get() >= 1, "compactor never ran");
    assert_eq!(durable.last_checkpoint_error(), None);
    let state = durable.system().to_bytes();
    drop(durable);
    // Recovery from checkpoint + shortened tail equals the live state.
    let reopened = DurableBstSystem::open(&dir, cfg, || panic!("must recover")).unwrap();
    assert_eq!(reopened.system().to_bytes(), state);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Generation continuity across a snapshot reload (the satellite-1
/// regression): a decoded engine resumes every shard's tree generation
/// instead of restarting at zero, keeps counting monotonically through
/// fresh mutations, and a handle opened warm on the restored engine —
/// with the weight cache populated — answers exactly like a cold one
/// after churn.
#[test]
fn decoded_engine_continues_generations_warm_equals_cold() {
    let engine = ShardedBstSystem::builder(2_048)
        .shards(3)
        .expected_set_size(64)
        .seed(9)
        .build();
    let keysets: Vec<Vec<u64>> = (0..3u64)
        .map(|i| (0..50u64).map(|j| (i * 709 + j * 31) % 2_048).collect())
        .collect();
    let ids: Vec<_> = keysets
        .iter()
        .map(|k| engine.create(k.iter().copied()).unwrap())
        .collect();
    // Pre-save occupancy churn, so the persisted generations are
    // non-zero — the reset-to-zero bug is visible, not vacuously absent.
    for key in [5u64, 700, 1_500] {
        engine.remove_occupied(key).unwrap();
        engine.insert_occupied(key).unwrap();
    }
    let before: Vec<u64> = engine
        .shard_systems()
        .iter()
        .map(|s| s.tree_generation())
        .collect();
    assert!(
        before.iter().any(|&g| g > 0),
        "churn must bump a generation"
    );

    let restored = ShardedBstSystem::from_bytes(&engine.to_bytes()).unwrap();
    let after: Vec<u64> = restored
        .shard_systems()
        .iter()
        .map(|s| s.tree_generation())
        .collect();
    // Continuity: the decoded engine resumes the persisted counters.
    assert_eq!(after, before);

    // Warm handle + populated weight cache on the restored engine,
    // *then* mutate: occupancy churn and key churn on every shard.
    let warm = restored.query_id(ids[0]).unwrap();
    let _ = warm.live_weight().unwrap();
    let (primed, _) = restored.query_batch_ids(&ids, 7, 2);
    assert!(primed.iter().all(Result::is_ok));
    restored.remove_occupied(31).unwrap();
    restored.insert_keys(ids[0], [123u64, 999]).unwrap();
    restored.remove_occupied(1_024).unwrap();
    restored.insert_occupied(31).unwrap();

    // Post-mutation generations continue past the persisted values.
    for (sys, &g0) in restored.shard_systems().iter().zip(&before) {
        assert!(
            sys.tree_generation() >= g0,
            "generation regressed: {} < {g0}",
            sys.tree_generation()
        );
    }
    assert!(restored
        .shard_systems()
        .iter()
        .zip(&before)
        .any(|(s, &g0)| s.tree_generation() > g0));

    // Warm ≡ cold, and repaired cached batches equal bypassed answers.
    let cold = restored.query_id(ids[0]).unwrap();
    assert_eq!(warm.live_weight().unwrap(), cold.live_weight().unwrap());
    assert_eq!(warm.reconstruct().unwrap(), cold.reconstruct().unwrap());
    let (warm_batch, _) = restored.query_batch_ids(&ids, 21, 2);
    let bypass = ShardedBstSystem::from_bytes(&restored.to_bytes()).unwrap();
    let bypass_ids: Vec<_> = ids.clone();
    let (cold_batch, _) = bypass.query_batch_ids(&bypass_ids, 21, 2);
    for (a, b) in warm_batch.iter().zip(&cold_batch) {
        assert_eq!(a.as_ref().ok(), b.as_ref().ok());
    }
}

/// The checkpoint crash window: a SIGKILL after the checkpoint's
/// `rename(2)` but before covered segments are unlinked leaves the new
/// checkpoint AND the complete old log side by side. The sequence
/// number embedded in the checkpoint must make recovery skip the
/// covered segment — replaying it would re-derive a diverging set id
/// (startup failure) and double-apply key churn (silent corruption).
#[test]
fn stale_covered_segment_next_to_a_fresh_checkpoint_is_not_replayed() {
    let dir = scratch_dir("crash-window");
    let durable = DurableBstSystem::open(&dir, no_compactor(), || build_base(1_024, 2)).unwrap();
    let id = durable.create([1u64, 2, 3]).unwrap();
    durable.insert_keys(id, [10u64, 11]).unwrap();
    durable.remove_occupied(77).unwrap();
    // Save the pre-checkpoint segment, checkpoint, then put the segment
    // back: exactly the disk state the crash window leaves behind.
    let covered = only_segment(&dir);
    let covered_bytes = std::fs::read(&covered).unwrap();
    assert!(!covered_bytes.is_empty());
    durable.checkpoint().unwrap();
    let state = durable.system().to_bytes();
    drop(durable);
    assert!(!covered.exists(), "a checkpoint unlinks covered segments");
    std::fs::write(&covered, &covered_bytes).unwrap();

    let reopened = DurableBstSystem::open(&dir, no_compactor(), || panic!("must recover")).unwrap();
    assert_eq!(
        reopened.obs().replayed.get(),
        0,
        "the covered segment must be skipped, not replayed"
    );
    assert_eq!(reopened.system().to_bytes(), state);
    assert!(!covered.exists(), "open sweeps stale covered segments");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint that rotated but failed to publish leaves several
/// uncovered segments; recovery must replay them all, in sequence
/// order, and resume appending in the newest one.
#[test]
fn recovery_replays_multiple_uncovered_segments_in_order() {
    use bst_core::wal::{encode_checkpoint, Wal, WalRecord};
    let dir = scratch_dir("multi-segment");
    std::fs::create_dir_all(&dir).unwrap();
    // What id does the engine hand out first? Learn it from a probe so
    // the hand-written log records the genuine allocation.
    let first_id = build_base(1_024, 2).create([1u64, 2, 3]).unwrap().raw();
    std::fs::write(
        dir.join("checkpoint.bst"),
        encode_checkpoint(0, &build_base(1_024, 2).to_bytes()),
    )
    .unwrap();
    let mut seg1 = Wal::open(&dir.join("wal.00000001.log"), FsyncPolicy::Never, 0).unwrap();
    seg1.append(&WalRecord::Create {
        id: first_id,
        keys: vec![1, 2, 3],
    })
    .unwrap();
    drop(seg1);
    let mut seg2 = Wal::open(&dir.join("wal.00000002.log"), FsyncPolicy::Never, 0).unwrap();
    seg2.append(&WalRecord::InsertKeys {
        id: first_id,
        keys: vec![9],
    })
    .unwrap();
    seg2.append(&WalRecord::OccRemove { id: 55 }).unwrap();
    drop(seg2);

    let twin = build_base(1_024, 2);
    let tid = twin.create([1u64, 2, 3]).unwrap();
    twin.insert_keys(tid, [9u64]).unwrap();
    twin.remove_occupied(55).unwrap();

    let recovered =
        DurableBstSystem::open(&dir, no_compactor(), || panic!("must recover")).unwrap();
    assert_eq!(recovered.obs().replayed.get(), 3);
    assert_eq!(recovered.system().to_bytes(), twin.to_bytes());
    // Appends resume in the newest segment; another recovery still
    // replays the full uncovered history plus the new record.
    recovered.insert_occupied(55).unwrap();
    twin.insert_occupied(55).unwrap();
    drop(recovered);
    let reopened = DurableBstSystem::open(&dir, no_compactor(), || panic!("must recover")).unwrap();
    assert_eq!(reopened.obs().replayed.get(), 4);
    assert_eq!(reopened.system().to_bytes(), twin.to_bytes());
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash between staging `checkpoint.tmp` and renaming it strands the
/// temp file; reopening the directory sweeps it.
#[test]
fn open_sweeps_a_stale_checkpoint_tmp() {
    let dir = scratch_dir("tmp-sweep");
    {
        let durable =
            DurableBstSystem::open(&dir, no_compactor(), || build_base(1_024, 2)).unwrap();
        durable.create([4u64, 5]).unwrap();
    }
    let tmp = dir.join("checkpoint.tmp");
    std::fs::write(&tmp, b"half-written checkpoint junk").unwrap();
    let reopened = DurableBstSystem::open(&dir, no_compactor(), || panic!("must recover")).unwrap();
    assert!(!tmp.exists(), "open must sweep the stranded temp file");
    assert_eq!(reopened.obs().replayed.get(), 1);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

/// SAVE-equivalent checkpoint + adopt round-trip: adopting a snapshot
/// resets the durable state to exactly those bytes.
#[test]
fn adopt_resets_durable_state_to_the_snapshot() {
    let dir = scratch_dir("adopt");
    let durable = DurableBstSystem::open(&dir, no_compactor(), || build_base(1_024, 2)).unwrap();
    durable.create([1u64, 2, 3]).unwrap();
    let snapshot = durable.system().to_bytes();
    durable.create([9u64, 10]).unwrap();
    let adopted = ShardedBstSystem::from_bytes(&snapshot).unwrap();
    durable.adopt(adopted).unwrap();
    assert_eq!(durable.system().to_bytes(), snapshot);
    drop(durable);
    let reopened = DurableBstSystem::open(&dir, no_compactor(), || panic!("must recover")).unwrap();
    assert_eq!(reopened.system().to_bytes(), snapshot);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
